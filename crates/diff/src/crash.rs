//! Kill-point recovery fuzz: crash the WAL at every IO boundary and
//! prove recovery lands on an acknowledged state.
//!
//! Each iteration draws a base structure (the [`crate::gen`] families)
//! and runs a seeded mutation workload through a [`foc_wal::Wal`] backed
//! by the fault-injecting [`MemStore`], exactly the durable-ack
//! discipline `foc serve` uses: apply → append → fsync → ack, with a
//! checkpoint every few commits. An unarmed probe run counts the IO
//! units the workload spends (one per byte written, one per
//! sync/truncate/reset, checkpoint bytes + one for the atomic rename);
//! the sweep then re-runs the identical workload once per unit `k`,
//! crashing after exactly `k` units — which lands inside record
//! payloads, between append and fsync, and mid-checkpoint, not just on
//! tidy operation boundaries.
//!
//! After each crash the post-crash image is recovered under both
//! survival extremes of the page cache:
//!
//! * **keep = 0** — only fsynced bytes survive. Recovery must land on
//!   *exactly* the last acknowledged `(epoch, fingerprint)`: every ack
//!   implied durability (the policy is `always`), and nothing
//!   unacknowledged was durable.
//! * **keep = everything** — all written bytes survive. Recovery may
//!   land past the last ack (a record that was written but whose ack
//!   never made it out), but the state must be one the workload actually
//!   committed, at an epoch no older than the last ack.
//!
//! In both modes recovery itself must succeed: a crash may tear the log
//! tail, but it must never produce a directory the recovery code
//! refuses. Any deviation is logged as a `CRASH-VIOLATION` line.
//!
//! Determinism contract: identical to [`crate::harness`] — control flow
//! depends only on the configuration, so two runs produce byte-identical
//! logs (wall-clock never steers the sweep).

use std::io::Write;

use foc_obs::{names, Metrics};
use foc_structures::Structure;
use foc_wal::{FsyncPolicy, MemStore, Wal};
use rand::{rngs::StdRng, SeedableRng};

use crate::gen::{gen_case, GenConfig};
use crate::updates::gen_ops;

/// Per-iteration seed stride (same constant as the main harness, so
/// `--crash` case *i* is stable regardless of the iteration count).
const SEED_STRIDE: u64 = 0x9e37_79b9_7f4a_7c15;

/// Configuration of the kill-point sweep.
#[derive(Debug, Clone)]
pub struct CrashConfig {
    /// Master seed: fixes every base structure and workload.
    pub seed: u64,
    /// Number of `(structure, workload)` cases to sweep.
    pub iters: u64,
    /// Mutation batches per workload.
    pub steps: u64,
    /// Take a checkpoint every this many effective commits.
    pub checkpoint_every: u64,
    /// Generator knobs for the base structure.
    pub gen: GenConfig,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig {
            seed: 0,
            iters: 4,
            steps: 6,
            checkpoint_every: 2,
            gen: GenConfig::default(),
        }
    }
}

/// Summary of a kill-point sweep.
#[derive(Debug, Default)]
pub struct CrashReport {
    /// Workload cases swept.
    pub cases: u64,
    /// Kill points exercised (IO units across all cases).
    pub kill_points: u64,
    /// Recoveries performed (two survival modes per kill point).
    pub recoveries: u64,
    /// Human-readable violation records (also written to the log).
    pub violations: Vec<String>,
}

impl CrashReport {
    /// `true` when every recovery landed on an acknowledged state.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// What one workload run acknowledged and committed before it finished
/// or crashed.
struct Trace {
    /// `(epoch, fingerprint)` at every acknowledged point, starting with
    /// the recovered base state (acked trivially: it was durable).
    acked: Vec<(u64, u64)>,
    /// `(epoch, fingerprint)` of every state the in-memory structure
    /// reached, acknowledged or not.
    committed: Vec<(u64, u64)>,
    /// Whether the armed fault fired mid-workload.
    crashed: bool,
}

/// Runs the serve-shaped workload — recover, checkpoint, then
/// apply → append → ack with periodic checkpoints — against `store`.
/// Control flow is a pure function of `(seed, steps, checkpoint_every)`
/// and the crash budget, so the sweep re-runs it identically per kill
/// point.
fn run_workload(
    store: &mut MemStore,
    base: &Structure,
    seed: u64,
    steps: u64,
    checkpoint_every: u64,
) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace {
        acked: Vec::new(),
        committed: Vec::new(),
        crashed: false,
    };
    let (mut wal, rec) = match Wal::recover(&mut *store, FsyncPolicy::Always, Some(base.clone())) {
        Ok(x) => x,
        Err(_) => {
            // A fresh store spends no IO units during recovery, so this
            // only fires when the budget was zero before we started.
            trace.crashed = true;
            return trace;
        }
    };
    let mut delta = rec.delta;
    trace.acked.push((delta.epoch(), rec.fingerprint));
    trace.committed.push((delta.epoch(), rec.fingerprint));
    if !rec.had_checkpoint && wal.checkpoint(delta.current()).is_err() {
        trace.crashed = true;
        return trace;
    }
    let mut since_checkpoint = 0u64;
    for _ in 0..steps {
        let ops = gen_ops(&mut rng, delta.current());
        let info = match delta.apply(&ops) {
            Ok(info) => info,
            Err(_) => continue, // in-range batches never reject; keep rng in lockstep
        };
        if info.changed == 0 {
            continue;
        }
        let fp = delta.snapshot().fingerprint();
        trace.committed.push((info.epoch, fp));
        if wal.append_commit(info.epoch, fp, &ops).is_err() {
            trace.crashed = true;
            return trace;
        }
        trace.acked.push((info.epoch, fp));
        since_checkpoint += 1;
        if since_checkpoint >= checkpoint_every {
            if wal.checkpoint(delta.current()).is_err() {
                trace.crashed = true;
                return trace;
            }
            since_checkpoint = 0;
        }
    }
    trace
}

/// Sweeps every kill point of every case and recovers under both
/// survival modes. Log lines are deterministic for a fixed
/// configuration.
pub fn fuzz_crash(cfg: &CrashConfig, metrics: &Metrics, log: &mut dyn Write) -> CrashReport {
    let _ = writeln!(
        log,
        "fuzz-crash seed={} iterations={} steps={} checkpoint_every={}",
        cfg.seed, cfg.iters, cfg.steps, cfg.checkpoint_every
    );
    let mut report = CrashReport::default();
    let cases = metrics.counter(names::FUZZ_CASES);
    let violations_ctr = metrics.counter(names::FUZZ_DIVERGENCES);
    for i in 0..cfg.iters {
        let case_seed = cfg.seed ^ i.wrapping_mul(SEED_STRIDE);
        let mut rng = StdRng::seed_from_u64(case_seed);
        let base = gen_case(&mut rng, &cfg.gen).structure;
        cases.inc();
        report.cases += 1;

        // Unarmed probe: sizes the sweep and fixes the full ack history.
        let mut probe = MemStore::new();
        let full = run_workload(
            &mut probe,
            &base,
            case_seed,
            cfg.steps,
            cfg.checkpoint_every,
        );
        debug_assert!(!full.crashed);
        let total_units = probe.units();

        let mut violate = |report: &mut CrashReport, kill: u64, keep: &str, msg: String| {
            let line = format!(
                "CRASH-VIOLATION seed {} iter {i} kill-unit {kill} survival {keep} :: {msg}",
                cfg.seed
            );
            let _ = writeln!(log, "{line}");
            violations_ctr.inc();
            report.violations.push(line);
        };

        for kill in 0..total_units {
            report.kill_points += 1;
            let mut store = MemStore::with_crash_after(kill);
            let t = run_workload(
                &mut store,
                &base,
                case_seed,
                cfg.steps,
                cfg.checkpoint_every,
            );
            if !t.crashed {
                violate(
                    &mut report,
                    kill,
                    "-",
                    format!("budget {kill} of {total_units} units did not crash the workload"),
                );
                continue;
            }
            let &(acked_epoch, acked_fp) = match t.acked.last() {
                Some(last) => last,
                None => &(base.epoch(), base.fingerprint()),
            };
            for keep in [0usize, usize::MAX] {
                let mode = if keep == 0 {
                    "fsync-only"
                } else {
                    "page-cache"
                };
                report.recoveries += 1;
                let survived = store.survived(keep);
                let rec = match Wal::recover(survived, FsyncPolicy::Always, Some(base.clone())) {
                    Ok((_, rec)) => rec,
                    Err(e) => {
                        violate(
                            &mut report,
                            kill,
                            mode,
                            format!("recovery refused a crashed-but-uncorrupted image: {e}"),
                        );
                        continue;
                    }
                };
                let got = (rec.delta.epoch(), rec.fingerprint);
                if keep == 0 {
                    // Only fsynced bytes survived: recovery must land on
                    // exactly the last acknowledged state.
                    if got != (acked_epoch, acked_fp) {
                        violate(
                            &mut report,
                            kill,
                            mode,
                            format!(
                                "recovered epoch {} fp {:016x}, last ack was epoch {} fp {:016x}",
                                got.0, got.1, acked_epoch, acked_fp
                            ),
                        );
                    }
                } else {
                    // Everything written survived: recovery may run past
                    // the ack, but only along the committed history.
                    if got.0 < acked_epoch {
                        violate(
                            &mut report,
                            kill,
                            mode,
                            format!(
                                "recovered epoch {} is older than acked epoch {acked_epoch}",
                                got.0
                            ),
                        );
                    } else if !t.committed.contains(&got) {
                        violate(
                            &mut report,
                            kill,
                            mode,
                            format!(
                                "recovered epoch {} fp {:016x} was never committed",
                                got.0, got.1
                            ),
                        );
                    }
                }
            }
        }
    }
    let _ = writeln!(
        log,
        "fuzz-crash done cases={} kill_points={} recoveries={} violations={}",
        report.cases,
        report.kill_points,
        report.recoveries,
        report.violations.len()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CrashConfig {
        CrashConfig {
            seed: 5,
            iters: 2,
            steps: 4,
            checkpoint_every: 2,
            gen: GenConfig {
                max_order: 8,
                ..GenConfig::default()
            },
        }
    }

    #[test]
    fn kill_point_sweep_is_clean() {
        let metrics = Metrics::new();
        let mut log = Vec::new();
        let report = fuzz_crash(&small(), &metrics, &mut log);
        assert!(
            report.clean(),
            "violations: {:#?}\nlog: {}",
            report.violations,
            String::from_utf8_lossy(&log)
        );
        assert_eq!(report.cases, 2);
        assert!(report.kill_points > 100, "sweep must cover many IO units");
        assert_eq!(report.recoveries, report.kill_points * 2);
    }

    #[test]
    fn crash_fuzz_logs_are_deterministic() {
        let run = |seed: u64| {
            let metrics = Metrics::new();
            let mut log = Vec::new();
            fuzz_crash(
                &CrashConfig {
                    seed,
                    iters: 1,
                    ..small()
                },
                &metrics,
                &mut log,
            );
            String::from_utf8(log).unwrap()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
