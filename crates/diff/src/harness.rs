//! The seed-driven fuzz loop and corpus replay.
//!
//! Determinism contract: control flow depends only on `(seed, iteration
//! count)`. The per-case RNG is re-seeded from the master seed and the
//! iteration index, so case *i* is the same whether the run does 10 or
//! 10 000 iterations, and a `--budget` given in seconds is converted to
//! a fixed iteration quota up front ([`CASES_PER_BUDGET_SECOND`]) —
//! wall-clock time is measured into metrics but never consulted for
//! control flow. Two runs with the same configuration therefore produce
//! byte-identical logs and corpus files on any machine, fast or slow.

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use foc_obs::{names, Metrics};
use rand::{rngs::StdRng, SeedableRng};

use crate::corpus::{case_file_name, load_dir, save_case};
use crate::gen::{gen_case, GenConfig};
use crate::meta::run_meta_with_deadline;
use crate::oracle::{engine_matrix, run_matrix_with_deadline, BugInjection, Case, Divergence};
use crate::shrink::shrink_case;

/// Deterministic `--budget` conversion: one budget-second buys this many
/// iterations. Chosen so a 30 s budget exercises a few hundred cases in
/// well under 30 s of real time on any plausible machine; the budget is
/// an iteration quota, not a deadline.
pub const CASES_PER_BUDGET_SECOND: u64 = 15;

/// SplitMix64-style odd multiplier decorrelating per-iteration seeds.
const SEED_STRIDE: u64 = 0x9e37_79b9_7f4a_7c15;

/// Fuzz-run configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed: fixes every generated case.
    pub seed: u64,
    /// Explicit iteration count (wins over `budget_secs`).
    pub iters: Option<u64>,
    /// Budget in seconds, converted deterministically via
    /// [`CASES_PER_BUDGET_SECOND`].
    pub budget_secs: Option<u64>,
    /// Generator knobs.
    pub gen: GenConfig,
    /// Where to persist shrunk divergences (`None` = don't persist).
    pub corpus_dir: Option<PathBuf>,
    /// Test-only fault injection.
    pub injection: BugInjection,
    /// Run the metamorphic battery on every case (in addition to the
    /// engine matrix).
    pub metamorphic: bool,
    /// Run the anytime confidence-contract battery on every case: each
    /// engine kind under fixed fuel budgets, tagged answers checked
    /// against the oracle (see [`crate::anytime`]).
    pub anytime: bool,
    /// Shrink divergences before reporting/persisting them.
    pub shrink: bool,
    /// Per-case wall-clock deadline armed on every engine evaluation, so
    /// a wedged variant cannot hang the whole sweep (`None` = no
    /// deadline). Trips are counted under `fuzz.case_timeouts`; the
    /// default is generous enough that healthy runs never trip it and
    /// log determinism is preserved in practice.
    pub case_deadline: Option<std::time::Duration>,
}

/// Default per-case deadline (see [`FuzzConfig::case_deadline`]).
pub const DEFAULT_CASE_DEADLINE: std::time::Duration = std::time::Duration::from_secs(30);

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            iters: None,
            budget_secs: None,
            gen: GenConfig::default(),
            corpus_dir: None,
            injection: BugInjection::default(),
            metamorphic: true,
            anytime: true,
            shrink: true,
            case_deadline: Some(DEFAULT_CASE_DEADLINE),
        }
    }
}

impl FuzzConfig {
    /// The deterministic iteration quota for this configuration.
    pub fn iterations(&self) -> u64 {
        self.iters.unwrap_or_else(|| {
            self.budget_secs
                .map(|s| s.saturating_mul(CASES_PER_BUDGET_SECOND))
                .unwrap_or(100)
        })
    }
}

/// One reported divergence, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct FoundDivergence {
    /// Iteration index that produced the original case (or the corpus
    /// file name on replay).
    pub origin: String,
    /// The minimised (or original, when shrinking is off) case.
    pub case: Case,
    /// The divergences the minimised case still exhibits.
    pub divergences: Vec<Divergence>,
    /// Accepted shrink steps.
    pub shrink_steps: u64,
    /// Corpus file the case was persisted to, if any.
    pub corpus_file: Option<PathBuf>,
}

/// Summary of a fuzz or replay run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// All divergences found (shrunk when shrinking is on).
    pub found: Vec<FoundDivergence>,
}

impl FuzzReport {
    /// `true` when every engine agreed on every case.
    pub fn clean(&self) -> bool {
        self.found.is_empty()
    }
}

/// Everything a case run observed: matrix + metamorphic divergences.
fn run_case(case: &Case, cfg: &FuzzConfig, rng: &mut StdRng, metrics: &Metrics) -> Vec<Divergence> {
    let total = metrics.counter(names::FUZZ_ENGINE_NANOS);
    let mut timing = |variant: &'static str, d: std::time::Duration| {
        let nanos = d.as_nanos() as u64;
        total.add(nanos);
        metrics
            .counter(&format!("{}{variant}", names::FUZZ_ENGINE_NANOS_PREFIX))
            .add(nanos);
    };
    let (_, mut divergences, timeouts) =
        run_matrix_with_deadline(case, &cfg.injection, Some(&mut timing), cfg.case_deadline);
    metrics.counter(names::FUZZ_CASE_TIMEOUTS).add(timeouts);
    metrics
        .counter(names::FUZZ_DIVERGENCES)
        .add(divergences.len() as u64);
    if cfg.metamorphic {
        let mut meta_found = Vec::new();
        for variant in &engine_matrix() {
            meta_found.extend(run_meta_with_deadline(
                variant,
                case,
                &cfg.injection,
                rng,
                cfg.case_deadline,
            ));
        }
        metrics
            .counter(names::FUZZ_META_DIVERGENCES)
            .add(meta_found.len() as u64);
        divergences.extend(meta_found);
    }
    if cfg.anytime {
        let (_, anytime_found) = crate::anytime::run_anytime_battery(case);
        metrics
            .counter(names::FUZZ_ANYTIME_DIVERGENCES)
            .add(anytime_found.len() as u64);
        divergences.extend(anytime_found);
    }
    divergences
}

/// Shrinks a diverging case down to one that still diverges in the
/// engine matrix (the metamorphic battery is excluded from the shrink
/// predicate: it is randomised, and the matrix alone must stay red).
fn minimise(case: &Case, cfg: &FuzzConfig, metrics: &Metrics) -> (Case, u64) {
    let attempts = metrics.counter(names::FUZZ_SHRINK_ATTEMPTS);
    let (small, steps) = shrink_case(
        case,
        |cand| {
            !run_matrix_with_deadline(cand, &cfg.injection, None, cfg.case_deadline)
                .1
                .is_empty()
        },
        || attempts.inc(),
    );
    metrics.counter(names::FUZZ_SHRINK_STEPS).add(steps);
    (small, steps)
}

fn report_divergence(
    log: &mut dyn Write,
    origin: &str,
    case: &Case,
    cfg: &FuzzConfig,
    metrics: &Metrics,
    divergences: Vec<Divergence>,
) -> FoundDivergence {
    // Only matrix divergences drive the shrinker: the metamorphic
    // battery is randomised and the anytime battery's contract checks
    // are not part of the shrink predicate, so neither can keep a
    // candidate red.
    let matrix_only: Vec<&Divergence> = divergences
        .iter()
        .filter(|d| !d.variant.starts_with("meta:") && !d.variant.starts_with("anytime:"))
        .collect();
    let (small, shrink_steps) = if cfg.shrink && !matrix_only.is_empty() {
        minimise(case, cfg, metrics)
    } else {
        (case.clone(), 0)
    };
    // Re-run the matrix on the minimised case so the report describes
    // what the corpus file actually reproduces.
    let final_divergences = if shrink_steps > 0 {
        run_matrix_with_deadline(&small, &cfg.injection, None, cfg.case_deadline).1
    } else {
        divergences
    };
    let note = final_divergences
        .iter()
        .map(|d| format!("{origin}: {d}"))
        .collect::<Vec<_>>()
        .join("\n");
    let corpus_file = cfg.corpus_dir.as_ref().map(|dir| {
        save_case(dir, &small, &note)
            .unwrap_or_else(|e| panic!("cannot write corpus to {dir:?}: {e}"))
    });
    let _ = writeln!(
        log,
        "DIVERGENCE {origin} shrink_steps={shrink_steps} file={} :: {}",
        corpus_file
            .as_ref()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .unwrap_or_else(|| "-".into()),
        final_divergences
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
    FoundDivergence {
        origin: origin.to_string(),
        case: small,
        divergences: final_divergences,
        shrink_steps,
        corpus_file,
    }
}

/// Runs the fuzz loop. Log lines written to `log` are deterministic for
/// a fixed configuration; wall-clock only flows into `metrics`.
pub fn fuzz(cfg: &FuzzConfig, metrics: &Metrics, log: &mut dyn Write) -> FuzzReport {
    let iterations = cfg.iterations();
    let _ = writeln!(
        log,
        "fuzz seed={} iterations={} metamorphic={} shrink={}",
        cfg.seed, iterations, cfg.metamorphic, cfg.shrink
    );
    let started = Instant::now();
    let mut report = FuzzReport::default();
    let cases = metrics.counter(names::FUZZ_CASES);
    for i in 0..iterations {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ i.wrapping_mul(SEED_STRIDE));
        let case = gen_case(&mut rng, &cfg.gen);
        cases.inc();
        report.cases += 1;
        let divergences = run_case(&case, cfg, &mut rng, metrics);
        if !divergences.is_empty() {
            let origin = format!("seed {} iter {i}", cfg.seed);
            report.found.push(report_divergence(
                log,
                &origin,
                &case,
                cfg,
                metrics,
                divergences,
            ));
        }
    }
    metrics
        .counter("fuzz.wall_nanos")
        .add(started.elapsed().as_nanos() as u64);
    let _ = writeln!(
        log,
        "fuzz done cases={} divergences={}",
        report.cases,
        report.found.len()
    );
    report
}

/// Replays every corpus case under the full matrix (and metamorphic
/// battery). A clean report means every historical divergence stays
/// fixed.
pub fn replay(cfg: &FuzzConfig, metrics: &Metrics, log: &mut dyn Write) -> FuzzReport {
    let dir = cfg
        .corpus_dir
        .as_ref()
        .expect("replay requires a corpus directory");
    let entries = load_dir(dir).unwrap_or_else(|e| panic!("cannot load corpus {dir:?}: {e}"));
    let _ = writeln!(log, "replay corpus={dir:?} cases={}", entries.len());
    let mut report = FuzzReport::default();
    let cases = metrics.counter(names::FUZZ_CASES);
    for (path, case) in entries {
        cases.inc();
        report.cases += 1;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let divergences = run_case(&case, cfg, &mut rng, metrics);
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if divergences.is_empty() {
            let _ = writeln!(log, "replay ok {name}");
        } else {
            let found = FoundDivergence {
                origin: name.clone(),
                case,
                divergences,
                shrink_steps: 0,
                corpus_file: Some(path),
            };
            let _ = writeln!(
                log,
                "replay DIVERGENCE {name} :: {}",
                found
                    .divergences
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
            report.found.push(found);
        }
    }
    let _ = writeln!(
        log,
        "replay done cases={} divergences={}",
        report.cases,
        report.found.len()
    );
    report
}

/// The content-addressed corpus file name a case would be saved under
/// (re-exported for the CLI's dry-run output).
pub fn corpus_name(case: &Case) -> String {
    case_file_name(case)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> FuzzConfig {
        FuzzConfig {
            seed: 42,
            iters: Some(40),
            metamorphic: false,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn healthy_engines_fuzz_clean() {
        let metrics = Metrics::new();
        let mut log = Vec::new();
        let report = fuzz(&quick_cfg(), &metrics, &mut log);
        assert!(report.clean(), "unexpected divergences: {:?}", report.found);
        assert_eq!(report.cases, 40);
        assert_eq!(metrics.snapshot().counter(names::FUZZ_CASES), 40);
        assert!(metrics.snapshot().counter(names::FUZZ_ENGINE_NANOS) > 0);
    }

    #[test]
    fn same_seed_same_log_different_seed_different_cases() {
        let run = |seed: u64| {
            let metrics = Metrics::new();
            let mut log = Vec::new();
            fuzz(
                &FuzzConfig {
                    seed,
                    iters: Some(15),
                    metamorphic: false,
                    ..FuzzConfig::default()
                },
                &metrics,
                &mut log,
            );
            String::from_utf8(log).unwrap()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn vanishing_case_deadline_trips_and_is_counted() {
        // A zero deadline interrupts every variant at the first guard
        // poll; the sweep still completes (no hang, no divergence — an
        // interrupted oracle aborts each comparison) and the trips land
        // under `fuzz.case_timeouts`.
        let metrics = Metrics::new();
        let mut log = Vec::new();
        let report = fuzz(
            &FuzzConfig {
                iters: Some(3),
                metamorphic: false,
                case_deadline: Some(std::time::Duration::ZERO),
                ..FuzzConfig::default()
            },
            &metrics,
            &mut log,
        );
        assert!(report.clean(), "interrupts are not divergences");
        assert_eq!(report.cases, 3);
        assert!(metrics.snapshot().counter(names::FUZZ_CASE_TIMEOUTS) > 0);
    }

    #[test]
    fn budget_is_an_iteration_quota_not_a_deadline() {
        let cfg = FuzzConfig {
            budget_secs: Some(3),
            iters: None,
            ..FuzzConfig::default()
        };
        assert_eq!(cfg.iterations(), 3 * CASES_PER_BUDGET_SECOND);
    }
}
