//! Metamorphic checks: paper-native identities every engine must respect.
//!
//! Differential testing only catches bugs where engines *disagree*; a
//! bug shared by all engines (e.g. in a common substrate) slips through.
//! Metamorphic relations add an engine-independent oracle:
//!
//! * **Isomorphism invariance** — FOC(P) cannot distinguish isomorphic
//!   structures, so relabelling the universe by a random permutation
//!   must not change any verdict or value.
//! * **Double negation / De Morgan** — `¬¬φ ≡ φ` and
//!   `¬(φ ∧ ψ) ≡ ¬φ ∨ ¬ψ`; the rewritten sentence must evaluate the
//!   same (the rewrites are built with raw constructors so the smart
//!   constructors cannot cancel them before the engines see them).
//! * **Disjoint-union splitting** (Lemma 6.4) — for a ground term
//!   `#(y). φ` with `free(φ) = {y}` and a recognisably local body,
//!   `t^{A ⊎ A} = 2 · t^A`: counting distributes over connected
//!   components.

use std::sync::Arc;

use foc_locality::locality_radius;
use foc_logic::subst::nnf;
use foc_logic::{Formula, Term};
use foc_structures::Structure;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::oracle::{
    evaluate_with_deadline, BugInjection, Case, Divergence, Outcome, QueryCase, Variant,
};

/// Rebuilds `s` with its universe relabelled by a random permutation.
/// The result is isomorphic to `s` by construction.
pub fn relabel<R: Rng>(s: &Structure, rng: &mut R) -> Structure {
    let n = s.order();
    let mut perm: Vec<u32> = (0..n).collect();
    perm.shuffle(rng);
    let rows: Vec<Vec<Vec<u32>>> = (0..s.signature().len())
        .map(|idx| {
            s.relation_at(idx)
                .rows()
                .map(|row| row.iter().map(|&e| perm[e as usize]).collect())
                .collect()
        })
        .collect();
    Structure::new(s.signature().clone(), n, rows)
}

/// `¬¬φ`, built raw so [`Formula::not`]'s double-negation cancellation
/// cannot undo it before the engines see it.
pub fn double_negation(f: &Arc<Formula>) -> Arc<Formula> {
    Arc::new(Formula::Not(Arc::new(Formula::Not(f.clone()))))
}

/// A recursive De Morgan rewrite: every `And` becomes `¬(∨ ¬gᵢ)` and
/// every `Or` becomes `¬(∧ ¬gᵢ)`, all with raw constructors.
/// Semantically the identity; syntactically maximally different.
pub fn de_morgan(f: &Arc<Formula>) -> Arc<Formula> {
    let neg = |g: Arc<Formula>| Arc::new(Formula::Not(g));
    match &**f {
        Formula::And(gs) => neg(Arc::new(Formula::Or(
            gs.iter().map(|g| neg(de_morgan(g))).collect(),
        ))),
        Formula::Or(gs) => neg(Arc::new(Formula::And(
            gs.iter().map(|g| neg(de_morgan(g))).collect(),
        ))),
        Formula::Not(g) => neg(de_morgan(g)),
        Formula::Exists(y, g) => Arc::new(Formula::Exists(*y, de_morgan(g))),
        Formula::Forall(y, g) => Arc::new(Formula::Forall(*y, de_morgan(g))),
        _ => f.clone(),
    }
}

/// `true` if the disjoint-union splitting check applies to `t`: a
/// one-variable count `#(y). φ` with `free(φ) ⊆ {y}` whose body the
/// radius analysis accepts (Lemma 6.4 needs a local body).
fn union_splittable(t: &Term) -> bool {
    match t {
        Term::Count(vars, body) => {
            vars.len() == 1
                && body.free_vars().iter().all(|v| v == &vars[0])
                && locality_radius(&nnf(body)).is_ok()
        }
        _ => false,
    }
}

/// Runs the metamorphic battery for one engine variant on one case.
/// Returns a divergence per violated identity; variant names are
/// `meta:<identity>:<engine>`.
pub fn run_meta<R: Rng>(
    variant: &Variant,
    case: &Case,
    inject: &BugInjection,
    rng: &mut R,
) -> Vec<Divergence> {
    run_meta_with_deadline(variant, case, inject, rng, None)
}

/// [`run_meta`] with a per-case deadline armed on every evaluation (see
/// [`crate::oracle::evaluate_with_deadline`]). Interrupted outcomes are
/// never reported as identity violations.
pub fn run_meta_with_deadline<R: Rng>(
    variant: &Variant,
    case: &Case,
    inject: &BugInjection,
    rng: &mut R,
    case_deadline: Option<std::time::Duration>,
) -> Vec<Divergence> {
    let mut divergences = Vec::new();
    // An ε-estimate is only pinned to within its bound of the truth, and
    // resampling a relabelled or doubled structure legitimately moves it
    // — the battery's identities demand exact equality, so approximate
    // variants are adjudicated by the tolerance-aware matrix instead.
    if variant.epsilon.is_some() {
        return divergences;
    }
    let base = evaluate_with_deadline(variant, case, inject, case_deadline);
    // An interrupted or erroring base run has nothing to compare against
    // (error *classes* are already cross-checked by the engine matrix).
    if matches!(base, Outcome::Err(_)) {
        return divergences;
    }
    let mut check = |identity: &str, transformed: &Case| {
        let got = evaluate_with_deadline(variant, transformed, inject, case_deadline);
        if got != base && !matches!(got, Outcome::Err(ref c) if c == "interrupted") {
            divergences.push(Divergence {
                variant: format!("meta:{identity}:{}", variant.name),
                expected: base.clone(),
                got,
            });
        }
    };

    // Isomorphism invariance: relabel the universe, keep the query.
    check(
        "iso",
        &Case {
            query: case.query.clone(),
            structure: relabel(&case.structure, rng),
        },
    );

    if let QueryCase::Sentence(f) = &case.query {
        check(
            "double-neg",
            &Case {
                query: QueryCase::Sentence(double_negation(f)),
                structure: case.structure.clone(),
            },
        );
        check(
            "de-morgan",
            &Case {
                query: QueryCase::Sentence(de_morgan(f)),
                structure: case.structure.clone(),
            },
        );
    }

    // Lemma 6.4 splitting: t^{A ⊎ A} = 2 · t^A. Using A ⊎ A keeps the
    // signatures trivially equal.
    if let QueryCase::Ground(t) = &case.query {
        if union_splittable(t) {
            if let Outcome::Int(v) = base {
                if let Some(doubled) = v.checked_mul(2) {
                    let union = Structure::disjoint_union(&case.structure, &case.structure);
                    let got = evaluate_with_deadline(
                        variant,
                        &Case {
                            query: case.query.clone(),
                            structure: union,
                        },
                        inject,
                        case_deadline,
                    );
                    let expected = Outcome::Int(doubled);
                    if got != expected && !matches!(got, Outcome::Err(ref c) if c == "interrupted")
                    {
                        divergences.push(Divergence {
                            variant: format!("meta:union:{}", variant.name),
                            expected,
                            got,
                        });
                    }
                }
            }
        }
    }

    divergences
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::engine_matrix;
    use foc_logic::parse::{parse_formula, parse_term};
    use foc_structures::gen::{gnm, path, star};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn relabel_preserves_row_counts_and_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = gnm(8, 11, &mut rng);
        let r = relabel(&s, &mut rng);
        assert_eq!(r.order(), s.order());
        for idx in 0..s.signature().len() {
            assert_eq!(
                r.relation_at(idx).rows().count(),
                s.relation_at(idx).rows().count()
            );
        }
    }

    #[test]
    fn rewrites_survive_smart_constructors() {
        let f = parse_formula("exists x. (E(x,x) & !E(x,x))").unwrap();
        assert!(matches!(&*double_negation(&f), Formula::Not(_)));
        let dm = de_morgan(&f);
        assert_ne!(format!("{dm}"), format!("{f}"));
    }

    #[test]
    fn metamorphic_battery_passes_on_healthy_engines() {
        let cases = [
            Case {
                query: QueryCase::Sentence(
                    parse_formula("forall x. exists y. (E(x,y) | x = y)").unwrap(),
                ),
                structure: star(6),
            },
            Case {
                query: QueryCase::Ground(parse_term("#(y). exists z. E(y,z)").unwrap()),
                structure: path(7),
            },
        ];
        let mut rng = StdRng::seed_from_u64(5);
        for case in &cases {
            for variant in &engine_matrix() {
                let div = run_meta(variant, case, &BugInjection::default(), &mut rng);
                assert!(div.is_empty(), "{}: {div:?}", variant.name);
            }
        }
    }

    #[test]
    fn union_splitting_is_gated_on_shape() {
        assert!(union_splittable(
            &parse_term("#(y). exists z. E(y,z)").unwrap()
        ));
        // Two count variables: Lemma 6.4's single-component argument
        // does not apply directly.
        assert!(!union_splittable(&parse_term("#(y,z). E(y,z)").unwrap()));
    }
}
