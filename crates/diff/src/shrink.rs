//! Greedy divergence minimisation.
//!
//! Given a diverging case and a predicate "does this still diverge?",
//! the shrinker repeatedly tries ever-smaller variants and keeps the
//! first one that still fails, until a fixpoint:
//!
//! 1. **Drop relations** — empty each relation wholesale.
//! 2. **Remove elements** — delete one universe element (via the
//!    induced substructure, so tuples touching it vanish too).
//! 3. **Simplify the query** — single-edit AST rewrites, bottom-up:
//!    replace a subformula by `true`/`false`, unwrap a negation or a
//!    connective down to one child, halve a distance bound, collapse a
//!    counting term to a constant, halve an integer.
//!
//! Candidates that would break sentence-hood (a quantifier or counting
//! binder removed while its variable is still used below) or leave the
//! FOC1(P) fragment are filtered out before the predicate ever runs.
//! The predicate is invoked a bounded number of times, so shrinking
//! always terminates even on pathological inputs.

use std::sync::Arc;

use foc_logic::build::{ff, int, tt};
use foc_logic::fragment::{check_foc1, check_foc1_term};
use foc_logic::{Formula, Term};
use foc_structures::Structure;

use crate::oracle::{Case, QueryCase};

/// Hard cap on predicate invocations per shrink.
const MAX_ATTEMPTS: usize = 2000;

/// Single-edit simplification candidates for a formula, roughly ordered
/// most-aggressive first.
fn formula_variants(f: &Arc<Formula>) -> Vec<Arc<Formula>> {
    let mut out = Vec::new();
    if !matches!(&**f, Formula::Bool(_)) {
        out.push(tt());
        out.push(ff());
    }
    match &**f {
        Formula::Not(g) => {
            out.push(g.clone());
            for g2 in formula_variants(g) {
                out.push(Arc::new(Formula::Not(g2)));
            }
        }
        Formula::And(gs) | Formula::Or(gs) => {
            let is_and = matches!(&**f, Formula::And(_));
            let rebuild = |children: Vec<Arc<Formula>>| {
                if is_and {
                    Formula::and(children)
                } else {
                    Formula::or(children)
                }
            };
            for (i, g) in gs.iter().enumerate() {
                // Keep just one child.
                out.push(g.clone());
                // Drop one child.
                if gs.len() > 1 {
                    let rest: Vec<_> = gs
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, h)| h.clone())
                        .collect();
                    out.push(rebuild(rest));
                }
                // Recurse into one child.
                for g2 in formula_variants(g) {
                    let mut children: Vec<_> = gs.to_vec();
                    children[i] = g2;
                    out.push(rebuild(children));
                }
            }
        }
        Formula::Exists(y, g) | Formula::Forall(y, g) => {
            // Unwrapping the binder may free `y`; the sentence-hood
            // filter below rejects those candidates.
            out.push(g.clone());
            for g2 in formula_variants(g) {
                let wrapped = if matches!(&**f, Formula::Exists(..)) {
                    Formula::Exists(*y, g2)
                } else {
                    Formula::Forall(*y, g2)
                };
                out.push(Arc::new(wrapped));
            }
        }
        Formula::DistLe { x, y, d } if *d > 0 => {
            for nd in [0, d / 2] {
                if nd != *d {
                    out.push(Arc::new(Formula::DistLe {
                        x: *x,
                        y: *y,
                        d: nd,
                    }));
                }
            }
        }
        Formula::Pred { name, args } => {
            for (i, t) in args.iter().enumerate() {
                for t2 in term_variants(t) {
                    let mut a = args.clone();
                    a[i] = t2;
                    out.push(Arc::new(Formula::Pred {
                        name: *name,
                        args: a,
                    }));
                }
            }
        }
        _ => {}
    }
    out
}

/// Single-edit simplification candidates for a counting term.
fn term_variants(t: &Arc<Term>) -> Vec<Arc<Term>> {
    let mut out = Vec::new();
    match &**t {
        Term::Int(i) => {
            if *i != 0 {
                out.push(int(0));
            }
            if i / 2 != *i && i / 2 != 0 {
                out.push(int(i / 2));
            }
        }
        Term::Count(vars, body) => {
            out.push(int(0));
            out.push(int(1));
            for b2 in formula_variants(body) {
                out.push(Arc::new(Term::Count(vars.clone(), b2)));
            }
        }
        Term::Add(ts) | Term::Mul(ts) => {
            let is_add = matches!(&**t, Term::Add(_));
            let rebuild = |children: Vec<Arc<Term>>| {
                if is_add {
                    Term::add(children)
                } else {
                    Term::mul(children)
                }
            };
            out.push(int(0));
            for (i, s) in ts.iter().enumerate() {
                out.push(s.clone());
                if ts.len() > 1 {
                    let rest: Vec<_> = ts
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, u)| u.clone())
                        .collect();
                    out.push(rebuild(rest));
                }
                for s2 in term_variants(s) {
                    let mut children: Vec<_> = ts.to_vec();
                    children[i] = s2;
                    out.push(rebuild(children));
                }
            }
        }
    }
    out
}

/// Well-formedness gate: candidates must stay sentences (or ground
/// terms) inside FOC1(P), or the engines would report spurious errors
/// instead of the divergence being minimised.
fn well_formed(q: &QueryCase) -> bool {
    match q {
        QueryCase::Sentence(f) => f.free_vars().is_empty() && check_foc1(f).is_ok(),
        QueryCase::Ground(t) => t.free_vars().is_empty() && check_foc1_term(t).is_ok(),
    }
}

fn structure_candidates(s: &Structure) -> Vec<Structure> {
    let mut out = Vec::new();
    // Empty one relation wholesale.
    for idx in 0..s.signature().len() {
        if s.relation_at(idx).rows().next().is_none() {
            continue;
        }
        let rows: Vec<Vec<Vec<u32>>> = (0..s.signature().len())
            .map(|j| {
                if j == idx {
                    Vec::new()
                } else {
                    s.relation_at(j).rows().map(|r| r.to_vec()).collect()
                }
            })
            .collect();
        out.push(Structure::new(s.signature().clone(), s.order(), rows));
    }
    // Remove one element (universes must stay non-empty).
    if s.order() > 1 {
        for e in 0..s.order() {
            let keep: Vec<u32> = (0..s.order()).filter(|&x| x != e).collect();
            out.push(s.induced(&keep).structure);
        }
    }
    out
}

fn query_candidates(q: &QueryCase) -> Vec<QueryCase> {
    match q {
        QueryCase::Sentence(f) => formula_variants(f)
            .into_iter()
            .map(QueryCase::Sentence)
            .collect(),
        QueryCase::Ground(t) => term_variants(t)
            .into_iter()
            .map(QueryCase::Ground)
            .collect(),
    }
}

/// Greedily minimises `case` under `still_diverges`, which must return
/// `true` when a candidate still exhibits the original failure. Returns
/// the smallest case found and the number of accepted shrink steps.
/// `still_diverges(&case)` is assumed `true` on entry.
pub fn shrink_case(
    case: &Case,
    mut still_diverges: impl FnMut(&Case) -> bool,
    mut attempt_hook: impl FnMut(),
) -> (Case, u64) {
    let mut current = case.clone();
    let mut steps = 0u64;
    let mut attempts = 0usize;
    'outer: loop {
        // Structure shrinks first: smaller structures make every
        // subsequent predicate call cheaper.
        for s in structure_candidates(&current.structure) {
            if attempts >= MAX_ATTEMPTS {
                break 'outer;
            }
            attempts += 1;
            attempt_hook();
            let cand = Case {
                query: current.query.clone(),
                structure: s,
            };
            if still_diverges(&cand) {
                current = cand;
                steps += 1;
                continue 'outer;
            }
        }
        for q in query_candidates(&current.query) {
            if attempts >= MAX_ATTEMPTS {
                break 'outer;
            }
            if !well_formed(&q) {
                continue;
            }
            attempts += 1;
            attempt_hook();
            let cand = Case {
                query: q,
                structure: current.structure.clone(),
            };
            if still_diverges(&cand) {
                current = cand;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::parse::{parse_formula, parse_term};
    use foc_structures::gen::{gnm, star};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn shrinks_structure_to_the_trigger_order() {
        // "Diverges" whenever the structure has order >= 3: the shrinker
        // should land exactly on order 3 with empty relations.
        let case = Case {
            query: QueryCase::Sentence(
                parse_formula("exists x. forall y. (E(x,y) | dist(x, y) <= 2)").unwrap(),
            ),
            structure: gnm(10, 20, &mut StdRng::seed_from_u64(1)),
        };
        let (small, steps) = shrink_case(&case, |c| c.structure.order() >= 3, || {});
        assert_eq!(small.structure.order(), 3);
        assert!(steps > 0);
        assert_eq!(small.structure.relation_at(0).rows().count(), 0);
        // The query shrank to a constant sentence.
        assert!(matches!(&small.query, QueryCase::Sentence(f)
            if matches!(&**f, Formula::Bool(_))));
    }

    #[test]
    fn candidates_never_leave_the_fragment() {
        let t = parse_term("#(x). (exists y. E(x,y) & @le(#(z). E(x,z), 2))").unwrap();
        for cand in term_variants(&t) {
            if cand.free_vars().is_empty() {
                assert!(check_foc1_term(&cand).is_ok(), "bad candidate {cand}");
            }
        }
    }

    #[test]
    fn shrink_is_bounded_even_when_everything_diverges() {
        let case = Case {
            query: QueryCase::Ground(parse_term("#(x,y). (E(x,y) | dist(x, y) <= 3)").unwrap()),
            structure: star(8),
        };
        let mut calls = 0usize;
        let (_, _) = shrink_case(&case, |_| false, || calls += 1);
        assert!(calls <= MAX_ATTEMPTS);
    }
}
