//! Interleaving fuzz for live updates: delta-maintained evaluation vs
//! rebuild-from-scratch.
//!
//! Each case draws a random query and structure (the [`crate::gen`]
//! families), wraps the structure in a [`DeltaStructure`], and then runs
//! a seeded interleaving of mutation batches and query evaluations. At
//! every query point three pipelines must agree:
//!
//! * **delta-local** — the `Local` engine over the live snapshot, with a
//!   [`TermCache`] carried across epochs by
//!   [`foc_locality::migrate_cache`] (dirty-ball recomputation only);
//! * **delta-cover** — the `Cover` engine over the live snapshot, with a
//!   [`CoverStore`] repaired across epochs by
//!   [`foc_covers::CoverStore::migrate`];
//! * **oracle** — the naive reference evaluator over
//!   [`DeltaStructure::rebuild_from_scratch`], an epoch-0 structure
//!   rebuilt from the current tuples with no incremental state at all.
//!
//! A disagreement means the incremental machinery (COW commits, Gaifman
//! maintenance, cache migration, or cover repair) corrupted state that a
//! cold evaluation would not have. The loop also cross-checks the
//! epoch-folded fingerprint: an effective commit that does not change
//! the structure fingerprint would silently poison every
//! fingerprint-keyed cache, so it is reported as a divergence too.
//!
//! Determinism contract: identical to [`crate::harness`] — control flow
//! depends only on `(seed, iterations)`, so two runs of the same
//! configuration produce byte-identical logs. Update cases are not
//! shrunk (an interleaving's failure step depends on all prior commits,
//! so dropping ops rarely preserves the failure; the full op history is
//! logged instead).

use std::io::Write;
use std::sync::Arc;

use foc_core::{EngineKind, Evaluator};
use foc_covers::CoverStore;
use foc_locality::{migrate_cache, TermCache};
use foc_logic::Predicates;
use foc_obs::{names, Metrics};
use foc_structures::{DeltaStructure, Structure, TupleOp};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::gen::{gen_case, GenConfig};
use crate::oracle::{classify, Outcome, QueryCase};

/// SplitMix64-style odd multiplier decorrelating per-iteration seeds
/// (same constant as the main harness, so `--updates` case *i* is
/// stable regardless of the iteration count).
const SEED_STRIDE: u64 = 0x9e37_79b9_7f4a_7c15;

/// Configuration of the update-interleaving fuzz loop.
#[derive(Debug, Clone)]
pub struct UpdatesConfig {
    /// Master seed: fixes every case and interleaving.
    pub seed: u64,
    /// Number of interleavings to run.
    pub iters: u64,
    /// Mutation-batch/query rounds per interleaving.
    pub steps: u64,
    /// Generator knobs for the base structure and the query.
    pub gen: GenConfig,
}

impl Default for UpdatesConfig {
    fn default() -> Self {
        UpdatesConfig {
            seed: 0,
            iters: 25,
            steps: 8,
            gen: GenConfig::default(),
        }
    }
}

/// Summary of an update-fuzz run.
#[derive(Debug, Default)]
pub struct UpdatesReport {
    /// Interleavings executed.
    pub cases: u64,
    /// Effective delta commits across all interleavings.
    pub commits: u64,
    /// Query points compared across all interleavings.
    pub queries: u64,
    /// Human-readable divergence records (also written to the log).
    pub divergences: Vec<String>,
}

impl UpdatesReport {
    /// `true` when every pipeline agreed at every query point.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Draws one mutation batch against `s`'s signature: 1–3 ops over the
/// declared relations, with components inside the universe (so the
/// batch always validates and any rejection is a harness bug).
pub(crate) fn gen_ops(rng: &mut StdRng, s: &Structure) -> Vec<TupleOp> {
    let rels = s.signature().rels();
    let order = s.order();
    if rels.is_empty() || order == 0 {
        return Vec::new();
    }
    let n_ops = rng.gen_range(1..=3usize);
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let decl = &rels[rng.gen_range(0..rels.len())];
        let tuple: Vec<u32> = (0..decl.arity).map(|_| rng.gen_range(0..order)).collect();
        let name = decl.name.name();
        ops.push(if rng.gen_bool(0.5) {
            TupleOp::insert(&name, &tuple)
        } else {
            TupleOp::delete(&name, &tuple)
        });
    }
    ops
}

fn eval_outcome(ev: &Evaluator, query: &QueryCase, s: &Structure) -> Outcome {
    match query {
        QueryCase::Sentence(f) => match ev.check_sentence(s, f) {
            Ok(b) => Outcome::Bool(b),
            Err(e) => Outcome::Err(classify(&e)),
        },
        QueryCase::Ground(t) => match ev.eval_ground(s, t) {
            Ok(i) => Outcome::Int(i),
            Err(e) => Outcome::Err(classify(&e)),
        },
    }
}

fn render_ops(ops: &[TupleOp]) -> String {
    ops.iter()
        .map(|o| o.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Runs the update-interleaving fuzz loop. Log lines are deterministic
/// for a fixed configuration.
pub fn fuzz_updates(cfg: &UpdatesConfig, metrics: &Metrics, log: &mut dyn Write) -> UpdatesReport {
    let _ = writeln!(
        log,
        "fuzz-updates seed={} iterations={} steps={}",
        cfg.seed, cfg.iters, cfg.steps
    );
    let preds = Predicates::standard();
    let mut report = UpdatesReport::default();
    let cases = metrics.counter(names::FUZZ_CASES);
    let divergences_ctr = metrics.counter(names::FUZZ_DIVERGENCES);
    for i in 0..cfg.iters {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ i.wrapping_mul(SEED_STRIDE));
        let case = gen_case(&mut rng, &cfg.gen);
        cases.inc();
        report.cases += 1;

        let mut delta = DeltaStructure::new(case.structure.clone());
        let cache = Arc::new(TermCache::default());
        let covers = Arc::new(CoverStore::default());
        let mut history: Vec<String> = Vec::new();

        let local = Evaluator::builder()
            .kind(EngineKind::Local)
            .shared_cache(cache.clone())
            .build();
        let cover = Evaluator::builder()
            .kind(EngineKind::Cover)
            .shared_covers(covers.clone())
            .shared_cache(cache.clone())
            .build();
        let oracle = Evaluator::builder().kind(EngineKind::Naive).build();
        let (Ok(local), Ok(cover), Ok(oracle)) = (local, cover, oracle) else {
            unreachable!("static engine configurations are valid");
        };

        let mut diverge = |report: &mut UpdatesReport, step: u64, msg: String, hist: &[String]| {
            let line = format!(
                "UPDATE-DIVERGENCE seed {} iter {i} step {step} :: {msg} :: query {:?} :: ops [{}]",
                cfg.seed,
                case.query.text(),
                hist.join(" | "),
            );
            let _ = writeln!(log, "{line}");
            divergences_ctr.inc();
            report.divergences.push(line);
        };

        for step in 0..cfg.steps {
            let ops = gen_ops(&mut rng, delta.current());
            let old = delta.snapshot();
            match delta.apply(&ops) {
                Err(e) => {
                    history.push(render_ops(&ops));
                    diverge(
                        &mut report,
                        step,
                        format!("in-range batch rejected: {e}"),
                        &history,
                    );
                    continue;
                }
                Ok(info) => {
                    history.push(render_ops(&ops));
                    if info.changed > 0 {
                        report.commits += 1;
                        let new = delta.snapshot();
                        if new.fingerprint() == old.fingerprint() {
                            diverge(
                                &mut report,
                                step,
                                format!(
                                    "fingerprint stale across effective commit (epoch {})",
                                    info.epoch
                                ),
                                &history,
                            );
                        }
                        migrate_cache(&cache, &old, &new, &info.touched, &preds);
                        covers.migrate(&old, &new, &info.touched);
                        cache.evict_structure(old.fingerprint());
                        covers.retire(old.fingerprint());
                    }
                }
            }

            let live = delta.snapshot();
            let rebuilt = delta.rebuild_from_scratch();
            report.queries += 1;
            let want = eval_outcome(&oracle, &case.query, &rebuilt);
            for (name, ev) in [("delta-local", &local), ("delta-cover", &cover)] {
                let got = eval_outcome(ev, &case.query, &live);
                if got != want {
                    diverge(
                        &mut report,
                        step,
                        format!("{name} got {got}, rebuild oracle wants {want}"),
                        &history,
                    );
                }
            }
        }
    }
    let _ = writeln!(
        log,
        "fuzz-updates done cases={} commits={} queries={} divergences={}",
        report.cases,
        report.commits,
        report.queries,
        report.divergences.len()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_interleavings_fuzz_clean() {
        let metrics = Metrics::new();
        let mut log = Vec::new();
        let cfg = UpdatesConfig {
            seed: 11,
            iters: 12,
            steps: 6,
            ..UpdatesConfig::default()
        };
        let report = fuzz_updates(&cfg, &metrics, &mut log);
        assert!(
            report.clean(),
            "divergences: {:#?}\nlog: {}",
            report.divergences,
            String::from_utf8_lossy(&log)
        );
        assert_eq!(report.cases, 12);
        assert!(report.commits > 0, "interleavings must commit");
        assert_eq!(report.queries, 12 * 6);
    }

    #[test]
    fn update_fuzz_logs_are_deterministic() {
        let run = |seed: u64| {
            let metrics = Metrics::new();
            let mut log = Vec::new();
            fuzz_updates(
                &UpdatesConfig {
                    seed,
                    iters: 5,
                    steps: 4,
                    ..UpdatesConfig::default()
                },
                &metrics,
                &mut log,
            );
            String::from_utf8(log).unwrap()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
