//! Confidence-aware differential checking for anytime runs.
//!
//! The anytime driver is allowed to return *less* than the exact answer
//! — but only in the ways its confidence tag promises. This module pins
//! those promises against the unbounded naive oracle:
//!
//! * `exact` answers must equal the oracle bit-for-bit;
//! * `approx` answers must land within their own claimed
//!   `error_bound` of the oracle — the `(ε, δ)` estimator's whole
//!   value proposition is that the bound it ships is real;
//! * `lower_bound` answers must never exceed the oracle — integers
//!   ordered numerically, Booleans by `false < true` (a banked `true`
//!   came from a witness verified against the full structure, so the
//!   oracle must also be `true`);
//! * `partial` answers with `clusters_done == clusters_total` covered
//!   the whole problem and must equal the oracle; an *incomplete*
//!   partial is unconstrained in value (it was computed on an induced
//!   substructure) but must honestly report `done < total`.
//!
//! A run that ends in `Interrupted` banked nothing, which is always
//! acceptable; any other error where the oracle produced a value is a
//! divergence, exactly as in the plain matrix.

use foc_core::{Confidence, EngineKind, Evaluator};

use crate::oracle::{classify, Case, Divergence, Outcome, QueryCase};

/// Fuel budgets the anytime battery runs each engine under: one tight
/// enough to leave most cases degraded and one generous enough to reach
/// the exact rung on small cases. Fuel-only budgets keep the battery
/// fully deterministic — no wall clock is consulted.
pub const ANYTIME_FUEL_BUDGETS: [u64; 2] = [1_500, 200_000];

/// The confidence-contract violation in `got` relative to `oracle`, if
/// any. `None` means the tagged answer keeps every promise its tag
/// makes.
pub fn contract_violation(
    oracle: &Outcome,
    got: &Outcome,
    confidence: &Confidence,
) -> Option<String> {
    match confidence {
        Confidence::Exact => (got != oracle).then(|| format!("exact answer {got} != oracle")),
        Confidence::Approximate { error_bound } => match (oracle, got) {
            (Outcome::Int(o), Outcome::Int(g)) => (g.abs_diff(*o) > *error_bound)
                .then(|| format!("approx estimate {g} strays past ±{error_bound} of oracle {o}")),
            _ => Some(format!(
                "approx estimate {got} incomparable with oracle {oracle}"
            )),
        },
        Confidence::LowerBound => match (oracle, got) {
            (Outcome::Int(o), Outcome::Int(g)) => {
                (g > o).then(|| format!("lower bound {g} exceeds oracle {o}"))
            }
            (Outcome::Bool(o), Outcome::Bool(g)) => {
                (*g && !*o).then(|| "lower bound true against a false oracle".to_string())
            }
            _ => Some(format!(
                "lower bound {got} incomparable with oracle {oracle}"
            )),
        },
        Confidence::Partial {
            clusters_done,
            clusters_total,
        } => {
            if clusters_done > clusters_total {
                return Some(format!(
                    "partial progress {clusters_done}/{clusters_total} overshoots"
                ));
            }
            if clusters_done == clusters_total && got != oracle {
                return Some(format!(
                    "complete partial ({clusters_done}/{clusters_total}) answer {got} != oracle"
                ));
            }
            None
        }
    }
}

/// Runs the anytime battery on one case: every engine kind under every
/// [`ANYTIME_FUEL_BUDGETS`] entry, each tagged answer checked against
/// the unbounded naive oracle's value via [`contract_violation`].
/// Returns the oracle outcome and every violation found. An erring
/// oracle (overflow, out-of-fragment) cannot adjudicate bounds, so the
/// battery is skipped for that case.
pub fn run_anytime_battery(case: &Case) -> (Outcome, Vec<Divergence>) {
    let oracle = anytime_outcome(
        &Evaluator::builder()
            .kind(EngineKind::Naive)
            .build()
            .expect("the unbounded naive oracle is a valid configuration"),
        case,
    )
    .0;
    let mut divergences = Vec::new();
    if matches!(oracle, Outcome::Err(_)) {
        return (oracle, divergences);
    }
    for kind in [EngineKind::Naive, EngineKind::Local, EngineKind::Cover] {
        for fuel in ANYTIME_FUEL_BUDGETS {
            let ev = Evaluator::builder()
                .kind(kind)
                .fuel(fuel)
                .build()
                .expect("anytime battery variants are valid configurations");
            let (got, confidence) = anytime_outcome(&ev, case);
            let name = format!("anytime:{kind:?}-fuel{fuel}").to_lowercase();
            let violation = match (&got, &confidence) {
                // Zero progress is the driver's honest refusal, never a
                // divergence.
                (Outcome::Err(class), _) if class == "interrupted" => None,
                (Outcome::Err(_), _) => Some(got.clone()),
                (_, Some(c)) => contract_violation(&oracle, &got, c).map(|why| {
                    // Fold the tag into the reported outcome so the log
                    // line explains *which* promise broke.
                    Outcome::Err(format!("confidence:{c}:{why}"))
                }),
                // A value without a tag cannot happen: the driver always
                // tags what it banks.
                (_, None) => Some(Outcome::Err("missing confidence tag".into())),
            };
            if let Some(reported) = violation {
                divergences.push(Divergence {
                    variant: name,
                    expected: oracle.clone(),
                    got: reported,
                });
            }
        }
    }
    (oracle, divergences)
}

/// One anytime evaluation, folded into the comparable outcome taxonomy
/// plus the confidence tag the driver attached (absent on errors).
fn anytime_outcome(ev: &Evaluator, case: &Case) -> (Outcome, Option<Confidence>) {
    let cfg = foc_core::AnytimeConfig::default();
    match &case.query {
        QueryCase::Sentence(f) => {
            match ev.check_sentence_anytime(&case.structure, f, &cfg, None, None) {
                Ok(out) => (Outcome::Bool(out.value), Some(out.confidence)),
                Err(e) => (Outcome::Err(classify(&e)), None),
            }
        }
        QueryCase::Ground(t) => {
            match ev.eval_ground_anytime(&case.structure, t, &cfg, None, None) {
                Ok(out) => (Outcome::Int(out.value), Some(out.confidence)),
                Err(e) => (Outcome::Err(classify(&e)), None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::parse::{parse_formula, parse_term};
    use foc_structures::gen::{grid, path, star};

    #[test]
    fn contract_accepts_sound_tags() {
        let o = Outcome::Int(10);
        assert!(contract_violation(&o, &Outcome::Int(10), &Confidence::Exact).is_none());
        assert!(contract_violation(&o, &Outcome::Int(7), &Confidence::LowerBound).is_none());
        assert!(contract_violation(
            &o,
            &Outcome::Int(3),
            &Confidence::Partial {
                clusters_done: 2,
                clusters_total: 5
            }
        )
        .is_none());
        assert!(contract_violation(
            &Outcome::Bool(true),
            &Outcome::Bool(false),
            &Confidence::LowerBound
        )
        .is_none());
        // Approx answers may miss by up to their claimed bound, in
        // either direction.
        for est in [7, 10, 13] {
            assert!(contract_violation(
                &o,
                &Outcome::Int(est),
                &Confidence::Approximate { error_bound: 3 }
            )
            .is_none());
        }
    }

    #[test]
    fn contract_rejects_broken_promises() {
        let o = Outcome::Int(10);
        assert!(contract_violation(&o, &Outcome::Int(9), &Confidence::Exact).is_some());
        assert!(contract_violation(&o, &Outcome::Int(11), &Confidence::LowerBound).is_some());
        // A "complete" partial must match the oracle…
        assert!(contract_violation(
            &o,
            &Outcome::Int(9),
            &Confidence::Partial {
                clusters_done: 5,
                clusters_total: 5
            }
        )
        .is_some());
        // …and progress can never overshoot the total.
        assert!(contract_violation(
            &o,
            &Outcome::Int(9),
            &Confidence::Partial {
                clusters_done: 6,
                clusters_total: 5
            }
        )
        .is_some());
        assert!(contract_violation(
            &Outcome::Bool(false),
            &Outcome::Bool(true),
            &Confidence::LowerBound
        )
        .is_some());
        // An approx estimate outside its own claimed bound is the
        // shrinkable divergence class the tolerance-aware oracle hunts.
        assert!(contract_violation(
            &o,
            &Outcome::Int(14),
            &Confidence::Approximate { error_bound: 3 }
        )
        .is_some());
        assert!(contract_violation(
            &o,
            &Outcome::Bool(true),
            &Confidence::Approximate { error_bound: 3 }
        )
        .is_some());
    }

    #[test]
    fn battery_is_clean_on_healthy_engines() {
        let cases = [
            Case {
                query: QueryCase::Ground(parse_term("#(x,y). !(dist(x,y) <= 2)").unwrap()),
                structure: grid(8, 8),
            },
            Case {
                query: QueryCase::Sentence(parse_formula("exists y. #(z). E(y,z) >= 1").unwrap()),
                structure: star(6),
            },
            Case {
                query: QueryCase::Ground(parse_term("#(x,y). E(x,y)").unwrap()),
                structure: path(30),
            },
        ];
        for case in cases {
            let (oracle, div) = run_anytime_battery(&case);
            assert!(!matches!(oracle, Outcome::Err(_)), "oracle errs: {oracle}");
            assert!(div.is_empty(), "contract violations: {div:?}");
        }
    }

    #[test]
    fn battery_runs_are_deterministic() {
        let case = Case {
            query: QueryCase::Ground(parse_term("#(x,y). !(dist(x,y) <= 2)").unwrap()),
            structure: grid(6, 6),
        };
        let a = format!("{:?}", run_anytime_battery(&case));
        let b = format!("{:?}", run_anytime_battery(&case));
        assert_eq!(a, b);
    }
}
