//! Differential oracle harness for the FOC1(P) engines.
//!
//! The repository ships three evaluation pipelines that must agree
//! bit-for-bit: the naive reference evaluator (complete for FOC(P)), the
//! localised engine of Theorem 6.10, and the cover-driven Section 8
//! recursion. This crate turns that redundancy into a correctness tool,
//! in the style of SQLancer-class differential DBMS testing:
//!
//! * [`gen`] draws random well-formed FOC1(P) sentences/ground terms
//!   (grammar-aware, bounded rank and arity) and random structures from
//!   every generator family in `foc-structures` — strings, coloured
//!   digraphs, SQL-style databases, trees, grids, bounded-degree and
//!   G(n,m) random graphs.
//! * [`oracle`] evaluates each (query, structure) case under the whole
//!   engine matrix — naive/local/cover × threads {1, N} × cache on/off ×
//!   degradation policy — and flags any divergence in result value or
//!   error taxonomy (overflow included) against the naive oracle.
//! * [`meta`] applies paper-native metamorphic identities: isomorphism
//!   invariance under random relabelling, double-negation and De Morgan
//!   rewrites, and the Lemma 6.4 disjoint-union splitting
//!   `t^{A ⊎ A} = 2 · t^A` for recognisably local counting bodies.
//! * [`anytime`] pins the anytime driver's confidence contract against
//!   the same oracle: an `exact` answer must equal it, a `lower_bound`
//!   must never exceed it, and a `partial` that covered every work unit
//!   must equal it.
//! * [`crash`] sweeps kill points over the `foc-wal` durability layer:
//!   a seeded mutation workload is crashed after every single IO unit
//!   and recovered under both page-cache survival extremes, asserting
//!   the recovered state is exactly the last durably acknowledged one.
//! * [`shrink`] greedily minimises a failing case (drop relations →
//!   remove elements → simplify the formula AST bottom-up).
//! * [`corpus`] persists shrunk divergences as replayable text files and
//!   loads them back for regression replay.
//! * [`harness`] ties it together into a deterministic, seed-driven fuzz
//!   loop with `foc-obs` metrics.
//!
//! Determinism contract: a fixed `(seed, iteration budget)` pair fully
//! determines every generated case, every engine verdict, the shrinker's
//! trajectory, the log lines, and the corpus bytes. Wall-clock time is
//! only ever *measured* (into metrics), never consulted for control flow.

pub mod anytime;
pub mod corpus;
pub mod crash;
pub mod gen;
pub mod harness;
pub mod meta;
pub mod oracle;
pub mod shrink;
pub mod updates;

pub use anytime::{contract_violation, run_anytime_battery, ANYTIME_FUEL_BUDGETS};
pub use corpus::{case_from_str, case_to_string, load_dir, save_case};
pub use crash::{fuzz_crash, CrashConfig, CrashReport};
pub use gen::{gen_case, GenConfig};
pub use harness::{fuzz, replay, FuzzConfig, FuzzReport, DEFAULT_CASE_DEADLINE};
pub use oracle::{
    engine_matrix, evaluate, evaluate_with_deadline, run_matrix, run_matrix_with_deadline,
    BugInjection, Case, Divergence, Outcome, QueryCase, Variant,
};
pub use shrink::shrink_case;
pub use updates::{fuzz_updates, UpdatesConfig, UpdatesReport};
