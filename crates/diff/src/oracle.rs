//! The differential oracle: an engine matrix evaluated against the naive
//! reference, with a comparable outcome/error taxonomy.
//!
//! The naive evaluator is the oracle — it implements Definition 3.2's
//! semantics directly, with no locality analysis, no decomposition, no
//! covers, no parallelism and no caches, so there is nothing for the
//! sophisticated machinery's bugs to hide behind. Every other engine
//! configuration must reproduce its verdict bit-for-bit, modulo two
//! deliberate escapes: a `Strict`-policy engine may *reject* a query that
//! is outside its capability (that is the documented contract of
//! [`DegradePolicy::Strict`]), and a resource interrupt aborts the
//! comparison rather than failing it.

use std::fmt;
use std::sync::Arc;

use foc_core::{ApproxConfig, DegradePolicy, EngineKind, Error, Evaluator};
use foc_logic::{Formula, Term};
use foc_structures::Structure;

/// A generated (or replayed) query: a sentence to model-check or a
/// ground counting term to evaluate.
#[derive(Debug, Clone)]
pub enum QueryCase {
    /// `A ⊨ φ` for a sentence φ.
    Sentence(Arc<Formula>),
    /// `t^A` for a ground term t.
    Ground(Arc<Term>),
}

impl QueryCase {
    /// `"sentence"` or `"ground"` (the corpus `mode` field).
    pub fn mode(&self) -> &'static str {
        match self {
            QueryCase::Sentence(_) => "sentence",
            QueryCase::Ground(_) => "ground",
        }
    }

    /// The query rendered in the `foc-logic` concrete syntax.
    pub fn text(&self) -> String {
        match self {
            QueryCase::Sentence(f) => f.to_string(),
            QueryCase::Ground(t) => t.to_string(),
        }
    }
}

/// One differential test case: a query plus the database it runs on.
#[derive(Debug, Clone)]
pub struct Case {
    /// The query under test.
    pub query: QueryCase,
    /// The database under test.
    pub structure: Structure,
}

/// A comparable evaluation outcome: a value, or an error *class*. Errors
/// compare by taxonomy class (not message text) so two engines failing
/// the same way — e.g. both overflowing — agree, while an engine that
/// overflows where the oracle returns a value diverges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A model-checking verdict.
    Bool(bool),
    /// A ground-term value.
    Int(i64),
    /// An error, by taxonomy class (see [`classify`]).
    Err(String),
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Bool(b) => write!(f, "{b}"),
            Outcome::Int(i) => write!(f, "{i}"),
            Outcome::Err(c) => write!(f, "error:{c}"),
        }
    }
}

/// The stable error-taxonomy class of an engine error.
pub fn classify(e: &Error) -> String {
    match e {
        Error::NotFoc1(_) => "not-foc1".into(),
        Error::Eval(ev) => format!("eval-{}", classify_eval(ev)),
        Error::Locality(l) => format!("locality-{}", classify_locality(l)),
        Error::Unsupported(_) => "unsupported".into(),
        Error::Config(_) => "config".into(),
        Error::Interrupted(_) => "interrupted".into(),
        Error::WorkerPanicked { .. } => "worker-panicked".into(),
    }
}

fn classify_eval(e: &foc_eval::EvalError) -> &'static str {
    use foc_eval::EvalError::*;
    match e {
        UnknownRelation(_) => "unknown-relation",
        RelationArity { .. } => "relation-arity",
        UnknownPredicate(_) => "unknown-predicate",
        PredicateArity { .. } => "predicate-arity",
        UnboundVariable(_) => "unbound-variable",
        ElementOutOfRange { .. } => "element-out-of-range",
        DuplicateCountVariable(_) => "duplicate-count-variable",
        Overflow => "overflow",
        Interrupted(_) => "interrupted",
    }
}

fn classify_locality(e: &foc_locality::LocalityError) -> &'static str {
    use foc_locality::LocalityError::*;
    match e {
        NotLocal(_) => "not-local",
        TooComplex(_) => "too-complex",
        NotFirstOrder(_) => "not-first-order",
        Eval(_) => "eval",
        WidthTooLarge { .. } => "width-too-large",
        RadiusTooLarge { .. } => "radius-too-large",
        WorkerPanicked { .. } => "worker-panicked",
    }
}

/// One engine configuration of the differential matrix.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Stable display name (`local-t4-cache`, …) used in logs and
    /// divergence reports.
    pub name: &'static str,
    /// Engine kind.
    pub kind: EngineKind,
    /// Worker threads.
    pub threads: usize,
    /// Memo cache on/off.
    pub cache: bool,
    /// Capability-error policy.
    pub degrade: DegradePolicy,
    /// When `Some(ε)`: ground counting terms run through the `(ε, δ)`
    /// approximate engine and are compared *tolerance-aware* — an
    /// estimate within its own claimed error bound of the oracle is
    /// agreement, and only a bound violation (the broken-guarantee
    /// class) is a divergence. Sentences still run exactly.
    pub epsilon: Option<f64>,
}

impl Variant {
    fn build(&self, case_deadline: Option<std::time::Duration>) -> Evaluator {
        let mut builder = Evaluator::builder()
            .kind(self.kind)
            .threads(self.threads)
            .cache(self.cache)
            .degrade(self.degrade);
        if let Some(eps) = self.epsilon {
            builder = builder.approx(ApproxConfig::with_epsilon(eps));
        }
        if let Some(d) = case_deadline {
            builder = builder.timeout(d);
        }
        builder
            .build()
            .expect("matrix variants are valid configurations")
    }
}

/// Worker fan-out used by the `-tN` variants.
pub const MATRIX_THREADS: usize = 4;

/// The full differential matrix. The first entry is the oracle (naive,
/// single-threaded); every later entry is compared against it. All three
/// engines appear at threads 1 and [`MATRIX_THREADS`], with the memo
/// cache exercised both on and off, and both degradation policies.
pub fn engine_matrix() -> Vec<Variant> {
    use DegradePolicy::{FallThrough, Strict};
    use EngineKind::{Cover, Local, Naive};
    vec![
        Variant {
            name: "naive-t1",
            kind: Naive,
            threads: 1,
            cache: false,
            degrade: FallThrough,
            epsilon: None,
        },
        Variant {
            name: "naive-t4",
            kind: Naive,
            threads: MATRIX_THREADS,
            cache: false,
            degrade: FallThrough,
            epsilon: None,
        },
        Variant {
            name: "local-t1-cache",
            kind: Local,
            threads: 1,
            cache: true,
            degrade: FallThrough,
            epsilon: None,
        },
        Variant {
            name: "local-t1-nocache",
            kind: Local,
            threads: 1,
            cache: false,
            degrade: FallThrough,
            epsilon: None,
        },
        Variant {
            name: "local-t4-cache",
            kind: Local,
            threads: MATRIX_THREADS,
            cache: true,
            degrade: FallThrough,
            epsilon: None,
        },
        Variant {
            name: "cover-t1-cache",
            kind: Cover,
            threads: 1,
            cache: true,
            degrade: FallThrough,
            epsilon: None,
        },
        Variant {
            name: "cover-t4-cache",
            kind: Cover,
            threads: MATRIX_THREADS,
            cache: true,
            degrade: FallThrough,
            epsilon: None,
        },
        Variant {
            name: "cover-t4-nocache",
            kind: Cover,
            threads: MATRIX_THREADS,
            cache: false,
            degrade: FallThrough,
            epsilon: None,
        },
        Variant {
            name: "local-t1-strict",
            kind: Local,
            threads: 1,
            cache: true,
            degrade: Strict,
            epsilon: None,
        },
        Variant {
            name: "cover-t1-strict",
            kind: Cover,
            threads: 1,
            cache: true,
            degrade: Strict,
            epsilon: None,
        },
        Variant {
            name: "approx-t1",
            kind: Naive,
            threads: 1,
            cache: false,
            degrade: FallThrough,
            epsilon: Some(0.1),
        },
    ]
}

/// A deliberately injected engine bug, used to validate end-to-end that
/// the harness catches, shrinks, and replays real divergences. Test-only:
/// nothing in the production path constructs a non-default value.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BugInjection {
    /// When `Some(k)`: flip the *Local* engine's sentence verdict on any
    /// structure of order ≥ k. The shrinker should then pin the
    /// structure at exactly order k.
    pub flip_local_sentence_min_order: Option<u32>,
    /// When `true`: push every approximate variant's estimate past its
    /// own claimed error bound, so the tolerance-aware comparison must
    /// flag the broken-guarantee divergence class.
    pub skew_approx_past_bound: bool,
}

impl BugInjection {
    /// `true` iff no bug is injected (the production configuration).
    pub fn is_none(&self) -> bool {
        *self == BugInjection::default()
    }
}

/// Evaluates `case` under one matrix variant (applying the injected bug,
/// if any, after the engine returns).
pub fn evaluate(variant: &Variant, case: &Case, inject: &BugInjection) -> Outcome {
    evaluate_with_deadline(variant, case, inject, None)
}

/// [`evaluate`] with a per-case wall-clock deadline armed on the engine
/// (the fuzz harness's protection against a wedged variant hanging the
/// whole sweep). A tripped deadline surfaces as
/// `Outcome::Err("interrupted")`.
pub fn evaluate_with_deadline(
    variant: &Variant,
    case: &Case,
    inject: &BugInjection,
    case_deadline: Option<std::time::Duration>,
) -> Outcome {
    evaluate_detail(variant, case, inject, case_deadline).0
}

/// [`evaluate_with_deadline`] plus the tolerance the outcome is entitled
/// to: `Some(bound)` when the variant answered through the `(ε, δ)`
/// estimator (agreement means within ±bound of the oracle), `None` for
/// an exact answer.
fn evaluate_detail(
    variant: &Variant,
    case: &Case,
    inject: &BugInjection,
    case_deadline: Option<std::time::Duration>,
) -> (Outcome, Option<u64>) {
    let ev = variant.build(case_deadline);
    let mut tolerance = None;
    let mut out = match &case.query {
        QueryCase::Sentence(f) => match ev.check_sentence(&case.structure, f) {
            Ok(b) => Outcome::Bool(b),
            Err(e) => Outcome::Err(classify(&e)),
        },
        QueryCase::Ground(t) if variant.epsilon.is_some() => {
            match ev.approx_count(&case.structure, t) {
                Ok(v) => {
                    tolerance = Some(v.error_bound);
                    Outcome::Int(v.estimate)
                }
                // The estimator refuses shapes it cannot sample (e.g.
                // products); the variant falls back to the exact path so
                // the whole matrix still adjudicates the case.
                Err(Error::Unsupported(_)) => match ev.eval_ground(&case.structure, t) {
                    Ok(i) => Outcome::Int(i),
                    Err(e) => Outcome::Err(classify(&e)),
                },
                Err(e) => Outcome::Err(classify(&e)),
            }
        }
        QueryCase::Ground(t) => match ev.eval_ground(&case.structure, t) {
            Ok(i) => Outcome::Int(i),
            Err(e) => Outcome::Err(classify(&e)),
        },
    };
    if let Some(min_order) = inject.flip_local_sentence_min_order {
        if variant.kind == EngineKind::Local && case.structure.order() >= min_order {
            if let Outcome::Bool(b) = out {
                out = Outcome::Bool(!b);
            }
        }
    }
    if inject.skew_approx_past_bound {
        if let (Outcome::Int(i), Some(bound)) = (&out, tolerance) {
            // 2·bound + 1, not bound + 1: an in-bound estimate sits
            // anywhere in [truth − bound, truth + bound], so a smaller
            // push could land a low estimate back inside the band and
            // the injection would go undetected for that seed.
            out = Outcome::Int(i.saturating_add((bound as i64) * 2).saturating_add(1));
        }
    }
    (out, tolerance)
}

/// One disagreement between a matrix variant and the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The disagreeing variant (or metamorphic check) name.
    pub variant: String,
    /// What the oracle (or the untransformed run) produced.
    pub expected: Outcome,
    /// What the variant produced.
    pub got: Outcome,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: expected {}, got {}",
            self.variant, self.expected, self.got
        )
    }
}

/// Whether a variant's outcome is an acceptable deviation rather than a
/// divergence: `Strict` engines may reject with a capability-class
/// error, and interrupts abort the comparison.
fn acceptable(variant: &Variant, out: &Outcome) -> bool {
    match out {
        Outcome::Err(class) => {
            if class == "interrupted" {
                return true;
            }
            if variant.degrade == DegradePolicy::Strict {
                // Capability classes: the formula is outside the engine's
                // fragment, and Strict forbids walking the ladder.
                return class == "not-foc1"
                    || class == "unsupported"
                    || class.starts_with("locality-not-local")
                    || class.starts_with("locality-too-complex")
                    || class.starts_with("locality-not-first-order")
                    || class.starts_with("locality-width-too-large")
                    || class.starts_with("locality-radius-too-large");
            }
            false
        }
        _ => false,
    }
}

/// Runs the full matrix on one case. Returns the oracle outcome and
/// every divergence found (empty = all engines agree).
pub fn run_matrix(
    case: &Case,
    inject: &BugInjection,
    timing: Option<&mut dyn FnMut(&'static str, std::time::Duration)>,
) -> (Outcome, Vec<Divergence>) {
    let (oracle, divergences, _) = run_matrix_with_deadline(case, inject, timing, None);
    (oracle, divergences)
}

/// [`run_matrix`] with a per-case deadline armed on every variant. The
/// third return component counts variant runs (oracle included) the
/// deadline cut short; interrupted outcomes never count as divergences
/// (an interrupted oracle aborts the comparison entirely).
pub fn run_matrix_with_deadline(
    case: &Case,
    inject: &BugInjection,
    mut timing: Option<&mut dyn FnMut(&'static str, std::time::Duration)>,
    case_deadline: Option<std::time::Duration>,
) -> (Outcome, Vec<Divergence>, u64) {
    let matrix = engine_matrix();
    let mut timeouts = 0u64;
    let mut timed_eval = |variant: &Variant| {
        let t0 = std::time::Instant::now();
        let out = evaluate_detail(variant, case, inject, case_deadline);
        if let Some(cb) = timing.as_deref_mut() {
            cb(variant.name, t0.elapsed());
        }
        if case_deadline.is_some() && matches!(&out.0, Outcome::Err(c) if c == "interrupted") {
            timeouts += 1;
        }
        out
    };
    let (oracle, _) = timed_eval(&matrix[0]);
    let mut divergences = Vec::new();
    // An interrupted oracle cannot adjudicate anything.
    if matches!(&oracle, Outcome::Err(c) if c == "interrupted") {
        return (oracle, divergences, timeouts);
    }
    for variant in &matrix[1..] {
        let (got, tolerance) = timed_eval(variant);
        // An ε-estimate agrees when it lands within its own claimed
        // bound of the oracle; anything else must match bit-for-bit.
        let agrees = match (&oracle, &got, tolerance) {
            (Outcome::Int(o), Outcome::Int(g), Some(bound)) => g.abs_diff(*o) <= bound,
            _ => got == oracle,
        };
        if !agrees && !acceptable(variant, &got) {
            divergences.push(Divergence {
                variant: variant.name.to_string(),
                expected: oracle.clone(),
                got,
            });
        }
    }
    (oracle, divergences, timeouts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_logic::parse::{parse_formula, parse_term};
    use foc_structures::gen::{clique, path, star};

    #[test]
    fn matrix_agrees_on_simple_cases() {
        let cases = [
            Case {
                query: QueryCase::Sentence(parse_formula("exists y. #(z). E(y,z) >= 1").unwrap()),
                structure: star(5),
            },
            Case {
                query: QueryCase::Ground(parse_term("#(x,y). E(x,y)").unwrap()),
                structure: path(6),
            },
        ];
        for case in cases {
            let (oracle, div) = run_matrix(&case, &BugInjection::default(), None);
            assert!(div.is_empty(), "unexpected divergence: {div:?}");
            assert!(!matches!(oracle, Outcome::Err(_)));
        }
    }

    #[test]
    fn injected_bug_is_flagged_on_local_variants_only() {
        let case = Case {
            query: QueryCase::Sentence(parse_formula("exists y. #(z). E(y,z) >= 1").unwrap()),
            structure: star(5),
        };
        let inject = BugInjection {
            flip_local_sentence_min_order: Some(3),
            ..BugInjection::default()
        };
        let (_, div) = run_matrix(&case, &inject, None);
        assert!(!div.is_empty(), "injected bug must surface");
        assert!(div.iter().all(|d| d.variant.starts_with("local-")));
        // Below the trigger order the bug is dormant.
        let small = Case {
            query: case.query.clone(),
            structure: path(2),
        };
        let inject_high = BugInjection {
            flip_local_sentence_min_order: Some(10),
            ..BugInjection::default()
        };
        let (_, div2) = run_matrix(&small, &inject_high, None);
        assert!(div2.is_empty());
    }

    #[test]
    fn approx_variant_is_compared_tolerance_aware() {
        // Dense enough that the estimator genuinely samples (the
        // assignment space exceeds the Hoeffding sample size): the
        // seeded estimate lands within its ±⌈ε·n^k⌉ bound of the naive
        // oracle, which counts as agreement.
        let case = Case {
            query: QueryCase::Ground(parse_term("#(x,y). E(x,y)").unwrap()),
            structure: clique(30),
        };
        let (oracle, div) = run_matrix(&case, &BugInjection::default(), None);
        assert!(matches!(oracle, Outcome::Int(_)), "oracle errs: {oracle}");
        assert!(div.is_empty(), "in-bound estimate is agreement: {div:?}");
        // An estimate past its own claimed bound is a real divergence —
        // and it is pinned on the approximate variant alone, in a
        // shrinkable (non-`meta:`/`anytime:`) class.
        let skew = BugInjection {
            skew_approx_past_bound: true,
            ..BugInjection::default()
        };
        let (_, div) = run_matrix(&case, &skew, None);
        assert!(!div.is_empty(), "bound violations must surface");
        assert!(div.iter().all(|d| d.variant == "approx-t1"), "{div:?}");
    }

    #[test]
    fn error_taxonomy_is_stable() {
        assert_eq!(classify(&Error::NotFoc1("x".into())), "not-foc1");
        assert_eq!(
            classify(&Error::Eval(foc_eval::EvalError::Overflow)),
            "eval-overflow"
        );
        assert_eq!(
            classify(&Error::Locality(
                foc_locality::LocalityError::RadiusTooLarge { radius: 9 }
            )),
            "locality-radius-too-large"
        );
    }
}
