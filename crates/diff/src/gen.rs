//! Deterministic random generation of FOC1(P) queries and structures.
//!
//! Queries are grammar-aware: formulas are built within the FOC1(P)
//! fragment by construction (every numerical-predicate application keeps
//! at most one free variable across its argument terms, per Definition
//! 5.1 rule (4′)), with bounded depth, counting-tuple width, distance
//! bounds, and integer constants. Structures are drawn from every
//! generator family in `foc-structures`, with orders capped so the naive
//! oracle stays fast.
//!
//! Everything is driven by the caller's RNG; the same RNG state always
//! produces the same [`Case`].

use std::sync::Arc;

use foc_logic::build::{atom_sym, cnt_vec, dist_le, eq, exists, ff, forall, int, pred, tt, v};
use foc_logic::fragment::{check_foc1, check_foc1_term};
use foc_logic::{Formula, Symbol, Term, Var};
use foc_structures::gen::{
    balanced_tree, bounded_degree, caterpillar, clique, colored_digraph, cycle, gnm, grid, path,
    random_tree, sql_database, star, string_structure, thinned_grid, ColoredParams, SqlDbParams,
};
use foc_structures::Structure;
use rand::Rng;

use crate::oracle::{Case, QueryCase};

/// Knobs for the case generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Cap on structure order (the naive oracle is exponential in
    /// quantifier rank, so keep universes small).
    pub max_order: u32,
    /// Maximum formula nesting depth.
    pub max_depth: u32,
    /// Maximum counting-tuple width `#(y₁,…,y_k)`.
    pub max_count_vars: usize,
    /// Distance atoms use bounds in `0..=max_dist`.
    pub max_dist: u32,
    /// Integer constants are drawn from `-max_int..=max_int`.
    pub max_int: i64,
    /// Probability of generating a ground counting term instead of a
    /// sentence.
    pub ground_bias: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_order: 14,
            max_depth: 4,
            max_count_vars: 2,
            max_dist: 4,
            max_int: 3,
            ground_bias: 0.4,
        }
    }
}

/// Relation symbols and arities of the structure under test, cached for
/// the formula generator.
struct Rels {
    rels: Vec<(Symbol, usize)>,
}

struct Gen<'a, R: Rng> {
    rng: &'a mut R,
    cfg: &'a GenConfig,
    rels: Rels,
    fresh: u32,
}

impl<R: Rng> Gen<'_, R> {
    fn fresh_var(&mut self) -> Var {
        let n = self.fresh;
        self.fresh += 1;
        v(&format!("fz{n}"))
    }

    fn pick_var(&mut self, scope: &[Var]) -> Option<Var> {
        if scope.is_empty() {
            None
        } else {
            Some(scope[self.rng.gen_range(0..scope.len())])
        }
    }

    /// A relational atom with arguments drawn (with replacement) from
    /// `scope`. `None` when there is nothing to draw from.
    fn gen_atom(&mut self, scope: &[Var]) -> Option<Arc<Formula>> {
        if scope.is_empty() || self.rels.rels.is_empty() {
            return None;
        }
        let (rel, arity) = self.rels.rels[self.rng.gen_range(0..self.rels.rels.len())];
        let args = (0..arity)
            .map(|_| scope[self.rng.gen_range(0..scope.len())])
            .collect();
        Some(atom_sym(rel, args))
    }

    /// A counting term whose free variables are a subset of `pivot`
    /// (rule (4′): at most one free variable per predicate guard).
    fn gen_term(&mut self, pivot: Option<&Var>, depth: u32) -> Arc<Term> {
        let choice = if depth == 0 {
            0
        } else {
            self.rng.gen_range(0..10u32)
        };
        match choice {
            0..=1 => int(self.rng.gen_range(-self.cfg.max_int..=self.cfg.max_int)),
            2..=7 => {
                let k = self.rng.gen_range(1..=self.cfg.max_count_vars);
                let count_vars: Vec<Var> = (0..k).map(|_| self.fresh_var()).collect();
                let mut scope: Vec<Var> = count_vars.clone();
                if let Some(p) = pivot {
                    scope.push(*p);
                }
                let body = self.gen_formula(&scope, depth - 1);
                cnt_vec(count_vars, body)
            }
            8 => Term::add(vec![
                self.gen_term(pivot, depth - 1),
                self.gen_term(pivot, depth - 1),
            ]),
            _ => Term::mul(vec![
                self.gen_term(pivot, depth - 1),
                self.gen_term(pivot, depth - 1),
            ]),
        }
    }

    /// A numerical-predicate application (counting-term comparison)
    /// whose combined free variables are at most `{pivot}`.
    fn gen_pred(&mut self, pivot: Option<&Var>, depth: u32) -> Arc<Formula> {
        let s = self.gen_term(pivot, depth);
        match self.rng.gen_range(0..4u32) {
            0 => pred("ge1", vec![s]),
            1 => pred("even", vec![s]),
            2 => pred("eq", vec![s, self.gen_term(pivot, depth)]),
            _ => pred("le", vec![s, self.gen_term(pivot, depth)]),
        }
    }

    fn gen_leaf(&mut self, scope: &[Var]) -> Arc<Formula> {
        match self.rng.gen_range(0..8u32) {
            0 => {
                if self.rng.gen_bool(0.5) {
                    tt()
                } else {
                    ff()
                }
            }
            1 => match (self.pick_var(scope), self.pick_var(scope)) {
                (Some(x), Some(y)) => eq(x, y),
                _ => tt(),
            },
            2 => match (self.pick_var(scope), self.pick_var(scope)) {
                (Some(x), Some(y)) => dist_le(x, y, self.rng.gen_range(0..=self.cfg.max_dist)),
                _ => ff(),
            },
            3 => {
                let pivot = self.pick_var(scope);
                self.gen_pred(pivot.as_ref(), 1)
            }
            _ => self.gen_atom(scope).unwrap_or_else(|| {
                let pivot = self.pick_var(scope);
                self.gen_pred(pivot.as_ref(), 1)
            }),
        }
    }

    fn gen_formula(&mut self, scope: &[Var], depth: u32) -> Arc<Formula> {
        if depth == 0 || self.rng.gen_bool(0.3) {
            return self.gen_leaf(scope);
        }
        match self.rng.gen_range(0..6u32) {
            0 => Arc::new(Formula::Not(self.gen_formula(scope, depth - 1))),
            1 => Formula::and(vec![
                self.gen_formula(scope, depth - 1),
                self.gen_formula(scope, depth - 1),
            ]),
            2 => Formula::or(vec![
                self.gen_formula(scope, depth - 1),
                self.gen_formula(scope, depth - 1),
            ]),
            3 => {
                let pivot = self.pick_var(scope);
                self.gen_pred(pivot.as_ref(), depth - 1)
            }
            _ => {
                let y = self.fresh_var();
                let mut inner = scope.to_vec();
                inner.push(y);
                let body = self.gen_formula(&inner, depth - 1);
                if self.rng.gen_bool(0.5) {
                    exists(y, body)
                } else {
                    forall(y, body)
                }
            }
        }
    }
}

/// Draws a structure from one of the generator families, order-capped by
/// `cfg.max_order`.
fn gen_structure<R: Rng>(rng: &mut R, cfg: &GenConfig) -> Structure {
    let cap = cfg.max_order.max(4);
    match rng.gen_range(0..12u32) {
        0 => path(rng.gen_range(1..=cap)),
        1 => cycle(rng.gen_range(3..=cap.max(3))),
        2 => star(rng.gen_range(1..=cap)),
        3 => clique(rng.gen_range(1..=cap.min(6))),
        4 => grid(rng.gen_range(1..=4), rng.gen_range(1..=3)),
        5 => balanced_tree(rng.gen_range(2..=3), rng.gen_range(1..=2)),
        6 => random_tree(rng.gen_range(1..=cap), rng),
        7 => caterpillar(rng.gen_range(1..=6), rng.gen_range(0..=2)),
        8 => {
            let n = rng.gen_range(2..=cap);
            bounded_degree(n, 3, 4 * n as usize, rng)
        }
        9 => {
            let n = rng.gen_range(2..=cap);
            let m = rng.gen_range(0..=2 * n as usize);
            gnm(n, m, rng)
        }
        10 => thinned_grid(rng.gen_range(1..=4), rng.gen_range(1..=3), 0.7, rng),
        _ => match rng.gen_range(0..3u32) {
            0 => colored_digraph(
                ColoredParams {
                    n: rng.gen_range(1..=cap),
                    avg_out_degree: 1.5,
                    p_red: 0.3,
                    p_blue: 0.3,
                    p_green: 0.2,
                },
                rng,
            ),
            1 => {
                sql_database(
                    SqlDbParams {
                        customers: rng.gen_range(1..=3),
                        countries: 2,
                        cities: 2,
                        avg_orders: 1.0,
                    },
                    rng,
                )
                .structure
            }
            _ => {
                let alphabet = ['a', 'b', 'c'];
                let len = rng.gen_range(1..=cap.min(10)) as usize;
                let word: String = (0..len)
                    .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                    .collect();
                string_structure(&word, &alphabet)
            }
        },
    }
}

/// Generates one well-formed differential case: a structure plus either
/// a sentence (no free variables) or a ground counting term over its
/// signature. Guaranteed to lie in FOC1(P).
pub fn gen_case<R: Rng>(rng: &mut R, cfg: &GenConfig) -> Case {
    let structure = gen_structure(rng, cfg);
    let rels = Rels {
        rels: structure
            .signature()
            .rels()
            .iter()
            .map(|r| (r.name, r.arity))
            .collect(),
    };
    let mut g = Gen {
        rng,
        cfg,
        rels,
        fresh: 0,
    };
    // Belt and braces: generation is fragment-correct by construction,
    // but a stray bug here must not masquerade as an engine divergence,
    // so reject-and-retry on the official checker.
    for _ in 0..64 {
        g.fresh = 0;
        let query = if g.rng.gen_bool(g.cfg.ground_bias) {
            QueryCase::Ground(g.gen_term(None, g.cfg.max_depth))
        } else {
            let depth = g.cfg.max_depth;
            QueryCase::Sentence(g.gen_formula(&[], depth))
        };
        let ok = match &query {
            QueryCase::Sentence(f) => f.free_vars().is_empty() && check_foc1(f).is_ok(),
            QueryCase::Ground(t) => t.free_vars().is_empty() && check_foc1_term(t).is_ok(),
        };
        if ok {
            return Case { query, structure };
        }
    }
    // Unreachable in practice; keep the harness total regardless.
    Case {
        query: QueryCase::Sentence(tt()),
        structure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn generated_cases_are_well_formed_and_deterministic() {
        let cfg = GenConfig::default();
        let texts: Vec<Vec<String>> = (0..2)
            .map(|_| {
                let mut rng = StdRng::seed_from_u64(7);
                (0..50)
                    .map(|_| {
                        let case = gen_case(&mut rng, &cfg);
                        assert!(case.structure.order() >= 1);
                        match &case.query {
                            QueryCase::Sentence(f) => {
                                assert!(f.free_vars().is_empty());
                                assert!(check_foc1(f).is_ok());
                            }
                            QueryCase::Ground(t) => {
                                assert!(t.free_vars().is_empty());
                                assert!(check_foc1_term(t).is_ok());
                            }
                        }
                        format!("{}|{}", case.query.text(), case.structure.fingerprint())
                    })
                    .collect()
            })
            .collect();
        assert_eq!(texts[0], texts[1], "same seed must reproduce every case");
    }

    #[test]
    fn both_query_modes_and_several_signatures_appear() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(11);
        let mut sentences = 0usize;
        let mut grounds = 0usize;
        let mut sigs = std::collections::BTreeSet::new();
        for _ in 0..80 {
            let case = gen_case(&mut rng, &cfg);
            match &case.query {
                QueryCase::Sentence(_) => sentences += 1,
                QueryCase::Ground(_) => grounds += 1,
            }
            sigs.insert(
                case.structure
                    .signature()
                    .rels()
                    .iter()
                    .map(|r| format!("{}/{}", r.name, r.arity))
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        assert!(sentences > 0 && grounds > 0);
        assert!(
            sigs.len() >= 3,
            "expected several signature families, got {sigs:?}"
        );
    }
}
