//! End-to-end acceptance tests for the differential harness:
//! determinism of the fuzz loop, and the injected-bug lifecycle
//! (caught → shrunk → persisted → replayed).

use std::fs;
use std::path::{Path, PathBuf};

use foc_diff::harness::{fuzz, replay, FuzzConfig};
use foc_diff::oracle::BugInjection;
use foc_obs::Metrics;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("foc-diff-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Sorted `(file name, contents)` pairs of a corpus directory.
fn dir_contents(dir: &Path) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .map(|e| {
                let p = e.unwrap().path();
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    fs::read_to_string(&p).unwrap(),
                )
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    out.sort();
    out
}

fn run_fuzz(cfg: &FuzzConfig) -> (String, foc_diff::harness::FuzzReport) {
    let metrics = Metrics::new();
    let mut log = Vec::new();
    let report = fuzz(cfg, &metrics, &mut log);
    (String::from_utf8(log).unwrap(), report)
}

#[test]
fn same_seed_runs_are_byte_identical_including_corpus() {
    let buggy = BugInjection {
        flip_local_sentence_min_order: Some(3),
        ..BugInjection::default()
    };
    let run = |tag: &str| {
        let dir = temp_dir(tag);
        let cfg = FuzzConfig {
            seed: 42,
            iters: Some(30),
            corpus_dir: Some(dir.clone()),
            injection: buggy,
            ..FuzzConfig::default()
        };
        let (log, report) = run_fuzz(&cfg);
        let corpus = dir_contents(&dir);
        let _ = fs::remove_dir_all(&dir);
        (log, report.found.len(), corpus)
    };
    let (log_a, found_a, corpus_a) = run("a");
    let (log_b, found_b, corpus_b) = run("b");
    assert!(found_a > 0, "the injected bug must be caught");
    assert_eq!(found_a, found_b);
    assert_eq!(log_a, log_b, "same seed must produce identical logs");
    assert_eq!(
        corpus_a, corpus_b,
        "same seed must produce identical corpus bytes"
    );
    assert!(!corpus_a.is_empty());
}

#[test]
fn injected_bug_is_caught_shrunk_and_replayable() {
    let buggy = BugInjection {
        flip_local_sentence_min_order: Some(3),
        ..BugInjection::default()
    };
    let dir = temp_dir("lifecycle");
    let cfg = FuzzConfig {
        seed: 7,
        iters: Some(25),
        corpus_dir: Some(dir.clone()),
        injection: buggy,
        ..FuzzConfig::default()
    };
    let (log, report) = run_fuzz(&cfg);
    assert!(!report.clean(), "the injected bug must surface:\n{log}");

    // Shrinking pins the trigger: order exactly at the threshold, and
    // only local-engine variants disagreeing.
    let shrunk = report
        .found
        .iter()
        .find(|f| f.shrink_steps > 0)
        .expect("at least one divergence should shrink");
    assert_eq!(shrunk.case.structure.order(), 3);
    assert!(shrunk
        .divergences
        .iter()
        .all(|d| d.variant.starts_with("local-")));
    assert!(shrunk.corpus_file.as_ref().is_some_and(|p| p.exists()));

    // Replay from the persisted corpus: the bug still reproduces while
    // injected, and the corpus is clean once it is "fixed".
    let metrics = Metrics::new();
    let mut log = Vec::new();
    let still_buggy = replay(&cfg, &metrics, &mut log);
    assert!(
        !still_buggy.clean(),
        "replay must reproduce the persisted bug"
    );

    let fixed_cfg = FuzzConfig {
        injection: BugInjection::default(),
        ..cfg
    };
    let mut log = Vec::new();
    let fixed = replay(&fixed_cfg, &metrics, &mut log);
    assert!(
        fixed.clean(),
        "with the bug gone, the corpus must replay clean: {:?}",
        fixed.found
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn healthy_engines_survive_a_longer_fuzz_run() {
    let cfg = FuzzConfig {
        seed: 1,
        iters: Some(120),
        ..FuzzConfig::default()
    };
    let (log, report) = run_fuzz(&cfg);
    assert!(report.clean(), "healthy engines diverged:\n{log}");
    assert_eq!(report.cases, 120);
}
