//! Recovery idempotence: replaying the same WAL twice, recovering an
//! already-recovered directory, and checkpoint placement must all be
//! invisible in the recovered fingerprint.

use std::path::PathBuf;

use foc_structures::{Structure, StructureBuilder, TupleOp};
use foc_wal::{DirStore, FsyncPolicy, MemStore, Wal, WalStore};

fn base() -> Structure {
    let mut b = StructureBuilder::new();
    b.declare("E", 2);
    b.declare("P", 1);
    b.ensure_universe(10);
    for (u, v) in [(0, 1), (1, 2), (2, 3), (4, 5)] {
        b.try_insert("E", &[u, v]).unwrap();
    }
    b.try_insert("P", &[0]).unwrap();
    b.try_insert("P", &[4]).unwrap();
    b.finish()
}

/// A deterministic little workload: returns the batches applied.
fn workload() -> Vec<Vec<TupleOp>> {
    vec![
        vec![TupleOp::insert("E", &[3, 4]), TupleOp::insert("P", &[7])],
        vec![TupleOp::delete("E", &[0, 1])],
        vec![TupleOp::insert("E", &[5, 6]), TupleOp::delete("P", &[0])],
        vec![TupleOp::insert("E", &[0, 1])],
        vec![TupleOp::delete("E", &[4, 5]), TupleOp::insert("P", &[9])],
    ]
}

/// Runs the workload against a fresh MemStore-backed WAL, taking a
/// checkpoint before batch `checkpoint_at` (none if out of range).
fn run(checkpoint_at: usize) -> (MemStore, u64) {
    let (mut wal, rec) = Wal::recover(MemStore::new(), FsyncPolicy::Always, Some(base())).unwrap();
    let mut delta = rec.delta;
    wal.checkpoint(delta.current()).unwrap();
    for (i, ops) in workload().into_iter().enumerate() {
        if i == checkpoint_at {
            wal.checkpoint(delta.current()).unwrap();
        }
        let info = delta.apply(&ops).unwrap();
        assert!(info.changed > 0, "workload batches must be effective");
        wal.append_commit(info.epoch, delta.snapshot().fingerprint(), &ops)
            .unwrap();
    }
    let fp = delta.snapshot().fingerprint();
    (wal.into_store(), fp)
}

#[test]
fn double_replay_yields_the_identical_fingerprint() {
    let (store, live_fp) = run(usize::MAX);
    // First recovery replays the whole log.
    let (wal, rec1) = Wal::recover(store, FsyncPolicy::Always, None).unwrap();
    assert_eq!(rec1.replayed, 5);
    assert_eq!(rec1.fingerprint, live_fp);
    // Second recovery replays the very same records again — identical
    // epoch fingerprint, no truncation, nothing skipped differently.
    let (wal, rec2) = Wal::recover(wal.into_store(), FsyncPolicy::Always, None).unwrap();
    assert_eq!(rec2.replayed, 5);
    assert_eq!(rec2.truncated_bytes, 0);
    assert_eq!(rec2.fingerprint, live_fp);
    // And a third, for luck.
    let (_, rec3) = Wal::recover(wal.into_store(), FsyncPolicy::Always, None).unwrap();
    assert_eq!(rec3.fingerprint, live_fp);
}

#[test]
fn mid_workload_checkpoints_never_change_the_recovered_state() {
    let (_, want) = run(usize::MAX);
    for at in 0..5 {
        let (store, live_fp) = run(at);
        assert_eq!(live_fp, want, "live state must not depend on checkpoints");
        let (_, rec) = Wal::recover(store, FsyncPolicy::Always, None).unwrap();
        assert_eq!(
            rec.fingerprint, want,
            "checkpoint before batch {at} changed the recovered state"
        );
        // Replay is bounded by the checkpoint: only the tail replays.
        assert_eq!(rec.replayed, (5 - at) as u64);
    }
}

#[test]
fn recovering_an_already_recovered_directory_is_stable() {
    let dir = tmp_dir("recover-idempotent");
    let _ = std::fs::remove_dir_all(&dir);

    // Build a real on-disk WAL, crash mid-record, and recover twice.
    let store = DirStore::open(&dir).unwrap();
    let (mut wal, rec) = Wal::recover(store, FsyncPolicy::Always, Some(base())).unwrap();
    let mut delta = rec.delta;
    wal.checkpoint(delta.current()).unwrap();
    for ops in workload() {
        let info = delta.apply(&ops).unwrap();
        wal.append_commit(info.epoch, delta.snapshot().fingerprint(), &ops)
            .unwrap();
    }
    let durable_fp = delta.snapshot().fingerprint();
    // Tear the tail: append half a record, as a crash mid-write would.
    let torn = foc_wal::encode_commit(99, 0xDEAD, &[TupleOp::insert("E", &[8, 9])]);
    let mut store = wal.into_store();
    store.append_log(&torn[..torn.len() - 3]).unwrap();
    store.sync_log().unwrap();
    drop(store);

    let (wal, rec1) =
        Wal::recover(DirStore::open(&dir).unwrap(), FsyncPolicy::Always, None).unwrap();
    assert!(rec1.truncated_bytes > 0, "torn tail must be truncated");
    assert_eq!(rec1.fingerprint, durable_fp);
    drop(wal);
    // The directory is now clean; a second recovery is a pure no-op.
    let (_, rec2) = Wal::recover(DirStore::open(&dir).unwrap(), FsyncPolicy::Always, None).unwrap();
    assert_eq!(rec2.truncated_bytes, 0);
    assert_eq!(rec2.replayed, rec1.replayed);
    assert_eq!(rec2.fingerprint, durable_fp);

    let _ = std::fs::remove_dir_all(&dir);
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("foc-wal-{tag}-{}", std::process::id()))
}
