//! Storage backends: the injectable IO boundary of the WAL.
//!
//! [`WalStore`] abstracts the handful of primitive operations the log
//! needs — append, sync, truncate, and atomic checkpoint replacement —
//! so the same recovery code runs against a real directory
//! ([`DirStore`]) and against the in-memory fault-injection backend
//! ([`MemStore`]) the kill-point fuzzer drives.
//!
//! [`MemStore`] models durability the way an OS does: `append_log`
//! lands bytes in a *volatile* buffer, `sync_log` moves them to the
//! *durable* one. A simulated crash is armed as a budget of IO units
//! (one unit per byte written, one per sync/rename/truncate); when the
//! budget runs out mid-write the write is torn — a partial prefix lands
//! in the volatile buffer — and every subsequent operation fails, just
//! like a process that was killed. [`MemStore::survived`] then builds
//! the post-crash image: all durable bytes plus a caller-chosen prefix
//! of the volatile ones (page-cache survival is arbitrary; the fuzzer
//! exercises both extremes).

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The injectable IO boundary: every byte the WAL persists or reads
/// back crosses one of these operations.
pub trait WalStore {
    /// Returns the full current log image.
    fn read_log(&mut self) -> io::Result<Vec<u8>>;
    /// Appends bytes to the log (volatile until the next sync).
    fn append_log(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Makes all appended log bytes durable.
    fn sync_log(&mut self) -> io::Result<()>;
    /// Truncates the log to `len` bytes (torn-tail removal).
    fn truncate_log(&mut self, len: u64) -> io::Result<()>;
    /// Returns the checkpoint image, if one exists.
    fn read_checkpoint(&mut self) -> io::Result<Option<Vec<u8>>>;
    /// Atomically replaces the checkpoint: after this returns, a reader
    /// sees either the old image or the new one, never a mixture.
    fn write_checkpoint(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Empties the log (after a successful checkpoint).
    fn reset_log(&mut self) -> io::Result<()>;
}

/// A mutable reference is itself a store, so a caller can lend a store
/// to a [`crate::Wal`] for one crashed workload and still own it
/// afterwards to build the survived image.
impl<T: WalStore + ?Sized> WalStore for &mut T {
    fn read_log(&mut self) -> io::Result<Vec<u8>> {
        (**self).read_log()
    }
    fn append_log(&mut self, bytes: &[u8]) -> io::Result<()> {
        (**self).append_log(bytes)
    }
    fn sync_log(&mut self) -> io::Result<()> {
        (**self).sync_log()
    }
    fn truncate_log(&mut self, len: u64) -> io::Result<()> {
        (**self).truncate_log(len)
    }
    fn read_checkpoint(&mut self) -> io::Result<Option<Vec<u8>>> {
        (**self).read_checkpoint()
    }
    fn write_checkpoint(&mut self, bytes: &[u8]) -> io::Result<()> {
        (**self).write_checkpoint(bytes)
    }
    fn reset_log(&mut self) -> io::Result<()> {
        (**self).reset_log()
    }
}

/// Log file name inside a WAL directory.
pub const LOG_FILE: &str = "wal.log";
/// Checkpoint file name inside a WAL directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.foc";
const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// A WAL directory on a real filesystem: `wal.log` plus
/// `checkpoint.foc`, the checkpoint replaced via write-to-temp + fsync +
/// rename so it is always either the old image or the new one.
#[derive(Debug)]
pub struct DirStore {
    dir: PathBuf,
    log: Option<File>,
}

impl DirStore {
    /// Opens (creating if needed) a WAL directory.
    pub fn open(dir: &Path) -> io::Result<DirStore> {
        std::fs::create_dir_all(dir)?;
        Ok(DirStore {
            dir: dir.to_path_buf(),
            log: None,
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join(LOG_FILE)
    }

    fn log_file(&mut self) -> io::Result<&mut File> {
        if self.log.is_none() {
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.log_path())?;
            self.log = Some(f);
        }
        // The Option was just filled; the error branch is unreachable.
        self.log
            .as_mut()
            .ok_or_else(|| io::Error::other("log handle missing"))
    }

    /// Best-effort directory fsync so renames and truncations are
    /// themselves durable on filesystems that need it.
    fn sync_dir(&self) {
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
    }
}

impl WalStore for DirStore {
    fn read_log(&mut self) -> io::Result<Vec<u8>> {
        match std::fs::read(self.log_path()) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    fn append_log(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.log_file()?.write_all(bytes)
    }

    fn sync_log(&mut self) -> io::Result<()> {
        match &mut self.log {
            Some(f) => f.sync_data(),
            None => Ok(()), // nothing appended yet
        }
    }

    fn truncate_log(&mut self, len: u64) -> io::Result<()> {
        // Drop the append handle first: its cursor is managed by
        // O_APPEND, so reopening after set_len is the simple safe path.
        self.log = None;
        let f = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(self.log_path())?;
        f.set_len(len)?;
        f.sync_data()?;
        self.sync_dir();
        Ok(())
    }

    fn read_checkpoint(&mut self) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.dir.join(CHECKPOINT_FILE)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn write_checkpoint(&mut self, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(CHECKPOINT_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.dir.join(CHECKPOINT_FILE))?;
        self.sync_dir();
        Ok(())
    }

    fn reset_log(&mut self) -> io::Result<()> {
        self.truncate_log(0)
    }
}

/// In-memory store with kill-point fault injection (see module docs).
#[derive(Debug, Clone)]
pub struct MemStore {
    durable: Vec<u8>,
    volatile: Vec<u8>,
    checkpoint: Option<Vec<u8>>,
    /// IO units remaining before the simulated crash; `None` = no fault.
    budget: Option<u64>,
    crashed: bool,
    units: u64,
}

fn crash_err() -> io::Error {
    io::Error::other("simulated crash")
}

impl MemStore {
    /// A store with no fault armed.
    pub fn new() -> MemStore {
        MemStore {
            durable: Vec::new(),
            volatile: Vec::new(),
            checkpoint: None,
            budget: None,
            crashed: false,
            units: 0,
        }
    }

    /// A store that crashes after `units` IO units have been spent.
    pub fn with_crash_after(units: u64) -> MemStore {
        MemStore {
            budget: Some(units),
            ..MemStore::new()
        }
    }

    /// Spends up to `want` units; returns how many were available and
    /// marks the store crashed if the budget ran dry.
    fn spend(&mut self, want: u64) -> u64 {
        self.units += want;
        match &mut self.budget {
            None => want,
            Some(left) => {
                if *left >= want {
                    *left -= want;
                    want
                } else {
                    let got = *left;
                    *left = 0;
                    self.crashed = true;
                    got
                }
            }
        }
    }

    /// Whether the armed fault has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Total IO units consumed so far (used to size a kill-point sweep).
    pub fn units(&self) -> u64 {
        self.units
    }

    /// Bytes currently in the volatile (unsynced) log buffer.
    pub fn volatile_len(&self) -> usize {
        self.volatile.len()
    }

    /// The post-crash image: durable log bytes plus the first `keep`
    /// volatile bytes, with the checkpoint as last atomically replaced.
    /// The returned store has no fault armed.
    pub fn survived(&self, keep: usize) -> MemStore {
        let mut durable = self.durable.clone();
        durable.extend_from_slice(&self.volatile[..keep.min(self.volatile.len())]);
        MemStore {
            durable,
            volatile: Vec::new(),
            checkpoint: self.checkpoint.clone(),
            budget: None,
            crashed: false,
            units: 0,
        }
    }
}

impl Default for MemStore {
    fn default() -> Self {
        MemStore::new()
    }
}

impl WalStore for MemStore {
    fn read_log(&mut self) -> io::Result<Vec<u8>> {
        let mut all = self.durable.clone();
        all.extend_from_slice(&self.volatile);
        Ok(all)
    }

    fn append_log(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.crashed {
            return Err(crash_err());
        }
        let got = self.spend(bytes.len() as u64) as usize;
        self.volatile.extend_from_slice(&bytes[..got]);
        if got < bytes.len() {
            return Err(crash_err()); // torn write
        }
        Ok(())
    }

    fn sync_log(&mut self) -> io::Result<()> {
        if self.crashed || self.spend(1) == 0 {
            return Err(crash_err());
        }
        self.durable.append(&mut self.volatile);
        Ok(())
    }

    fn truncate_log(&mut self, len: u64) -> io::Result<()> {
        if self.crashed || self.spend(1) == 0 {
            return Err(crash_err());
        }
        self.durable.append(&mut self.volatile);
        self.durable.truncate(len as usize);
        Ok(())
    }

    fn read_checkpoint(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.checkpoint.clone())
    }

    fn write_checkpoint(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.crashed {
            return Err(crash_err());
        }
        // One unit per byte plus one for the rename; atomicity means a
        // mid-write crash leaves the previous checkpoint untouched.
        let want = bytes.len() as u64 + 1;
        if self.spend(want) < want {
            return Err(crash_err());
        }
        self.checkpoint = Some(bytes.to_vec());
        Ok(())
    }

    fn reset_log(&mut self) -> io::Result<()> {
        if self.crashed || self.spend(1) == 0 {
            return Err(crash_err());
        }
        self.durable.clear();
        self.volatile.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_sync_moves_volatile_to_durable() {
        let mut s = MemStore::new();
        s.append_log(b"abc").unwrap();
        assert_eq!(s.survived(0).read_log().unwrap(), b"");
        assert_eq!(s.survived(2).read_log().unwrap(), b"ab");
        s.sync_log().unwrap();
        assert_eq!(s.survived(0).read_log().unwrap(), b"abc");
    }

    #[test]
    fn mem_store_crash_tears_the_write_and_sticks() {
        let mut s = MemStore::with_crash_after(5);
        assert!(s.append_log(b"abc").is_ok());
        assert!(s.append_log(b"defg").is_err()); // only 2 units left
        assert!(s.crashed());
        assert!(s.sync_log().is_err());
        assert!(s.append_log(b"x").is_err());
        // Volatile holds the torn prefix abc + de.
        assert_eq!(s.survived(usize::MAX).read_log().unwrap(), b"abcde");
    }

    #[test]
    fn mem_store_checkpoint_is_atomic_under_crash() {
        let mut s = MemStore::with_crash_after(3);
        s.write_checkpoint(b"old").unwrap_err(); // 3 < 3+1 units
        assert_eq!(s.read_checkpoint().unwrap(), None);
        let mut s = MemStore::with_crash_after(4);
        s.write_checkpoint(b"old").unwrap();
        assert!(s.write_checkpoint(b"newer").is_err());
        assert_eq!(s.survived(0).read_checkpoint().unwrap().unwrap(), b"old");
    }

    #[test]
    fn dir_store_round_trips_and_truncates() {
        let dir = std::env::temp_dir().join(format!("foc-wal-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = DirStore::open(&dir).unwrap();
        assert_eq!(s.read_log().unwrap(), b"");
        assert_eq!(s.read_checkpoint().unwrap(), None);
        s.append_log(b"hello ").unwrap();
        s.append_log(b"world").unwrap();
        s.sync_log().unwrap();
        assert_eq!(s.read_log().unwrap(), b"hello world");
        s.truncate_log(5).unwrap();
        assert_eq!(s.read_log().unwrap(), b"hello");
        s.append_log(b"!").unwrap();
        assert_eq!(s.read_log().unwrap(), b"hello!");
        s.write_checkpoint(b"ckpt-1").unwrap();
        assert_eq!(s.read_checkpoint().unwrap().unwrap(), b"ckpt-1");
        s.write_checkpoint(b"ckpt-2").unwrap();
        assert_eq!(s.read_checkpoint().unwrap().unwrap(), b"ckpt-2");
        s.reset_log().unwrap();
        assert_eq!(s.read_log().unwrap(), b"");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
