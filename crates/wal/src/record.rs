//! Log record framing: length-prefixed, CRC32-guarded commit records.
//!
//! Each record is framed as
//!
//! ```text
//! [payload_len: u32 LE] [crc32(payload): u32 LE] [payload bytes]
//! ```
//!
//! and the payload is line-oriented text:
//!
//! ```text
//! commit <epoch> <fingerprint-hex16>
//! + <rel> <e1> <e2> ...
//! - <rel> <e1> ...
//! ```
//!
//! The first line stamps the epoch the commit produced and the
//! epoch-folded [`foc_structures::Structure::fingerprint`] of the
//! snapshot *after* the commit; the remaining lines are the tuple ops of
//! the batch, replayed verbatim during recovery. Decoding stops at the
//! first frame that is incomplete, oversized, fails its CRC, or fails to
//! parse — the *torn-tail rule*: everything from that offset on is
//! discarded, because a record that was never durable was never
//! acknowledged.

use foc_structures::TupleOp;

use crate::crc::crc32;

/// Upper bound on a single record payload; a length prefix beyond this
/// is treated as tail corruption rather than an allocation request.
pub const MAX_PAYLOAD: usize = 1 << 28;

/// One decoded commit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// The epoch the commit produced.
    pub epoch: u64,
    /// Fingerprint of the snapshot after the commit (epoch-folded).
    pub fingerprint: u64,
    /// The tuple ops of the batch, in request order.
    pub ops: Vec<TupleOp>,
}

/// Encodes one commit as a framed record.
///
/// Relation names are written whitespace-separated, so a name containing
/// whitespace cannot round-trip; committed ops always name declared
/// relations, which the structure text format already keeps atomic.
pub fn encode_commit(epoch: u64, fingerprint: u64, ops: &[TupleOp]) -> Vec<u8> {
    let mut payload = format!("commit {epoch} {fingerprint:016x}\n");
    for op in ops {
        let verb = if op.insert { '+' } else { '-' };
        payload.push(verb);
        payload.push(' ');
        payload.push_str(&op.rel.name());
        for c in &op.tuple {
            payload.push(' ');
            payload.push_str(&c.to_string());
        }
        payload.push('\n');
    }
    let payload = payload.into_bytes();
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The result of scanning a log image: the records of the valid prefix,
/// its byte length, and — when the scan stopped early — why.
#[derive(Debug)]
pub struct DecodedLog {
    /// Records of the valid prefix, in append order.
    pub records: Vec<CommitRecord>,
    /// Byte length of the valid prefix; bytes past it are the torn tail.
    pub valid_len: usize,
    /// Why decoding stopped before the end of the image, if it did.
    pub torn: Option<String>,
}

/// Scans a log image, applying the torn-tail rule.
pub fn decode_log(bytes: &[u8]) -> DecodedLog {
    let mut records = Vec::new();
    let mut off = 0usize;
    let torn = loop {
        if off == bytes.len() {
            break None;
        }
        let rest = &bytes[off..];
        if rest.len() < 8 {
            break Some(format!("truncated frame header ({} bytes)", rest.len()));
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_PAYLOAD {
            break Some(format!("implausible payload length {len}"));
        }
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if rest.len() < 8 + len {
            break Some(format!(
                "truncated payload ({} of {len} bytes)",
                rest.len() - 8
            ));
        }
        let payload = &rest[8..8 + len];
        let actual = crc32(payload);
        if actual != crc {
            break Some(format!(
                "crc mismatch (stored {crc:08x}, actual {actual:08x})"
            ));
        }
        match parse_payload(payload) {
            Ok(rec) => records.push(rec),
            Err(why) => break Some(format!("unparseable payload: {why}")),
        }
        off += 8 + len;
    };
    DecodedLog {
        records,
        valid_len: off,
        torn,
    }
}

fn parse_payload(payload: &[u8]) -> Result<CommitRecord, String> {
    let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
    let mut lines = text.lines();
    let head = lines.next().ok_or("empty payload")?;
    let mut parts = head.split_whitespace();
    if parts.next() != Some("commit") {
        return Err("missing commit line".to_string());
    }
    let epoch: u64 = parts
        .next()
        .ok_or("missing epoch")?
        .parse()
        .map_err(|e| format!("bad epoch: {e}"))?;
    let fingerprint = u64::from_str_radix(parts.next().ok_or("missing fingerprint")?, 16)
        .map_err(|e| format!("bad fingerprint: {e}"))?;
    if parts.next().is_some() {
        return Err("trailing tokens on commit line".to_string());
    }
    let mut ops = Vec::new();
    for line in lines {
        let mut parts = line.split_whitespace();
        let insert = match parts.next() {
            Some("+") => true,
            Some("-") => false,
            other => return Err(format!("bad op verb {other:?}")),
        };
        let rel = parts.next().ok_or("missing relation name")?;
        let mut tuple = Vec::new();
        for tok in parts {
            tuple.push(
                tok.parse::<u32>()
                    .map_err(|e| format!("bad element: {e}"))?,
            );
        }
        ops.push(if insert {
            TupleOp::insert(rel, &tuple)
        } else {
            TupleOp::delete(rel, &tuple)
        });
    }
    Ok(CommitRecord {
        epoch,
        fingerprint,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<TupleOp> {
        vec![
            TupleOp::insert("E", &[0, 1]),
            TupleOp::delete("P", &[2]),
            TupleOp::insert("Unit", &[]),
        ]
    }

    #[test]
    fn roundtrip_two_records() {
        let mut log = encode_commit(1, 0xDEAD_BEEF, &sample_ops());
        log.extend_from_slice(&encode_commit(2, 42, &[]));
        let d = decode_log(&log);
        assert!(d.torn.is_none());
        assert_eq!(d.valid_len, log.len());
        assert_eq!(d.records.len(), 2);
        assert_eq!(d.records[0].epoch, 1);
        assert_eq!(d.records[0].fingerprint, 0xDEAD_BEEF);
        assert_eq!(d.records[0].ops, sample_ops());
        assert_eq!(d.records[1].epoch, 2);
        assert!(d.records[1].ops.is_empty());
    }

    #[test]
    fn every_truncation_point_is_a_clean_torn_tail() {
        let mut log = encode_commit(1, 7, &sample_ops());
        let first = log.len();
        log.extend_from_slice(&encode_commit(2, 8, &sample_ops()));
        for cut in 0..log.len() {
            let d = decode_log(&log[..cut]);
            // The valid prefix is always a record boundary at or before
            // the cut, and records are a prefix of the full sequence.
            assert!(d.valid_len <= cut);
            assert!(d.valid_len == 0 || d.valid_len == first);
            if cut < first {
                assert!(d.records.is_empty());
                if cut > 0 {
                    assert!(d.torn.is_some(), "cut {cut}");
                }
            } else if cut < log.len() {
                assert_eq!(d.records.len(), 1);
                if cut > first {
                    assert!(d.torn.is_some(), "cut {cut}");
                }
            }
        }
    }

    #[test]
    fn corruption_stops_the_scan() {
        let mut log = encode_commit(1, 7, &sample_ops());
        let len = log.len();
        log.extend_from_slice(&encode_commit(2, 8, &[]));
        log[len + 10] ^= 0x40; // flip a bit inside the second payload
        let d = decode_log(&log);
        assert_eq!(d.records.len(), 1);
        assert_eq!(d.valid_len, len);
        assert!(d.torn.unwrap().contains("crc mismatch"));
    }

    #[test]
    fn implausible_length_is_tail_corruption_not_allocation() {
        let mut log = Vec::new();
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&[0; 4]);
        let d = decode_log(&log);
        assert!(d.records.is_empty());
        assert!(d.torn.unwrap().contains("implausible"));
    }
}
