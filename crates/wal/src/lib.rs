//! # foc-wal — crash-safe durability for live updates
//!
//! A dependency-free write-ahead log + checkpoint pair in the classic
//! ARIES discipline, in miniature:
//!
//! * **Log-before-ack** — every effective commit is appended as a
//!   CRC32-framed, length-prefixed record carrying the epoch it
//!   produced, the epoch-folded fingerprint of the snapshot *after* the
//!   commit, and the tuple ops of the batch ([`record`]). The caller
//!   acknowledges the update only after [`Wal::append_commit`] returns,
//!   which applies the configured [`FsyncPolicy`].
//! * **Checkpoints bound replay** — [`Wal::checkpoint`] atomically
//!   replaces a snapshot of the whole [`Structure`] (its text
//!   serialization plus an epoch/fingerprint/CRC header) and empties the
//!   log, so recovery replays only the tail since the last checkpoint.
//!   Records at or below the checkpoint epoch are skipped on replay,
//!   which makes a crash *between* checkpoint replacement and log reset
//!   harmless.
//! * **Idempotent recovery** — [`Wal::recover`] loads the checkpoint,
//!   restores it at its recorded epoch
//!   ([`DeltaStructure::restore`]), truncates any torn tail (first
//!   frame that is incomplete or fails its CRC; see [`record`]), and
//!   replays the surviving records in order, verifying after each that
//!   the replayed snapshot's fingerprint equals the one recorded at
//!   commit time. A mismatch is a refusal to serve
//!   ([`WalError::FingerprintMismatch`]), never a silently wrong state.
//!   Recovering an already-recovered directory is a no-op with the
//!   identical fingerprint.
//!
//! The IO boundary is injectable ([`store::WalStore`]): the same
//! recovery code runs against a real directory ([`store::DirStore`])
//! and the in-memory crash-simulating backend ([`store::MemStore`])
//! that `foc fuzz --crash` sweeps kill-points over.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod crc;
pub mod record;
pub mod store;

use std::io;
use std::time::{Duration, Instant};

use foc_structures::io::{parse_structure, write_structure};
use foc_structures::{DeltaStructure, Structure, TupleOp};

pub use crc::crc32;
pub use record::{decode_log, encode_commit, CommitRecord, DecodedLog};
pub use store::{DirStore, MemStore, WalStore, CHECKPOINT_FILE, LOG_FILE};

/// When an appended record becomes durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every append: an acknowledgement implies durability.
    Always,
    /// Fsync when the previous fsync is at least this old; an
    /// acknowledgement implies durability within the interval.
    Interval(Duration),
    /// Never fsync from the append path (the OS flushes eventually);
    /// an acknowledgement implies only that the record was written.
    Never,
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    /// Parses `always`, `never`, `interval` (100 ms), or `interval:<ms>`.
    fn from_str(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::Interval(Duration::from_millis(100))),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|e| format!("bad fsync interval {ms:?}: {e}")),
                None => Err(format!(
                    "unknown fsync policy {other:?} (expected always, never, interval, or interval:<ms>)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Everything that can go wrong opening or recovering a WAL directory.
#[derive(Debug)]
pub enum WalError {
    /// An IO operation failed.
    Io(io::Error),
    /// The checkpoint or log content is structurally invalid in a way
    /// the torn-tail rule cannot repair.
    Corrupt(String),
    /// Replay reproduced a state whose fingerprint differs from the one
    /// recorded at commit time: the directory must not be served.
    FingerprintMismatch {
        /// The epoch at which the mismatch was detected.
        epoch: u64,
        /// The fingerprint recorded in the log/checkpoint.
        recorded: u64,
        /// The fingerprint the replayed state actually has.
        replayed: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "io error: {e}"),
            WalError::Corrupt(why) => write!(f, "corrupt wal: {why}"),
            WalError::FingerprintMismatch {
                epoch,
                recorded,
                replayed,
            } => write!(
                f,
                "fingerprint mismatch at epoch {epoch}: recorded {recorded:016x}, replayed {replayed:016x}"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> WalError {
        WalError::Io(e)
    }
}

/// What [`Wal::recover`] found and rebuilt.
#[derive(Debug)]
pub struct Recovery {
    /// The recovered versioned structure, at its recorded epoch.
    pub delta: DeltaStructure,
    /// Whether a checkpoint existed (false on a fresh directory).
    pub had_checkpoint: bool,
    /// Epoch of the checkpoint the replay started from.
    pub checkpoint_epoch: u64,
    /// Records replayed from the log tail.
    pub replayed: u64,
    /// Records skipped because the checkpoint already contained them.
    pub skipped: u64,
    /// Torn-tail bytes truncated from the log.
    pub truncated_bytes: u64,
    /// Fingerprint of the recovered snapshot.
    pub fingerprint: u64,
}

/// What one [`Wal::append_commit`] did.
#[derive(Debug, Clone, Copy)]
pub struct AppendInfo {
    /// Framed bytes appended to the log.
    pub bytes: u64,
    /// Whether this append fsynced (per policy).
    pub synced: bool,
}

/// Read-only summary of a WAL directory, for `foc wal inspect`.
#[derive(Debug)]
pub struct Inspection {
    /// Checkpoint header, if a checkpoint exists: `(epoch, fingerprint,
    /// universe order)`.
    pub checkpoint: Option<(u64, u64, u32)>,
    /// Per-record summaries of the valid log prefix: `(epoch,
    /// fingerprint, op count)`.
    pub records: Vec<(u64, u64, usize)>,
    /// Bytes of the valid log prefix.
    pub valid_bytes: u64,
    /// Bytes past the valid prefix (the torn tail; zero when clean).
    pub torn_bytes: u64,
    /// Why the scan stopped early, when it did.
    pub torn_reason: Option<String>,
}

const CHECKPOINT_MAGIC: &str = "focwal-checkpoint";

/// Serializes a checkpoint image: a header line carrying the epoch, the
/// epoch-folded fingerprint, and a CRC32 of the body, followed by the
/// structure's text serialization.
fn encode_checkpoint(s: &Structure) -> Vec<u8> {
    let body = write_structure(s);
    let header = format!(
        "{CHECKPOINT_MAGIC} 1 {} {:016x} {:08x}\n",
        s.epoch(),
        s.fingerprint(),
        crc32(body.as_bytes())
    );
    let mut out = header.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Parses and verifies a checkpoint image into `(structure, epoch,
/// fingerprint)`; the structure is epoch-0 (restore it via
/// [`DeltaStructure::restore`]).
fn decode_checkpoint(bytes: &[u8]) -> Result<(Structure, u64, u64), WalError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| WalError::Corrupt(format!("checkpoint is not utf-8: {e}")))?;
    let (header, body) = text
        .split_once('\n')
        .ok_or_else(|| WalError::Corrupt("checkpoint missing header line".to_string()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 5 || fields[0] != CHECKPOINT_MAGIC || fields[1] != "1" {
        return Err(WalError::Corrupt(format!(
            "bad checkpoint header {header:?}"
        )));
    }
    let epoch: u64 = fields[2]
        .parse()
        .map_err(|e| WalError::Corrupt(format!("bad checkpoint epoch: {e}")))?;
    let fingerprint = u64::from_str_radix(fields[3], 16)
        .map_err(|e| WalError::Corrupt(format!("bad checkpoint fingerprint: {e}")))?;
    let crc = u32::from_str_radix(fields[4], 16)
        .map_err(|e| WalError::Corrupt(format!("bad checkpoint crc: {e}")))?;
    let actual = crc32(body.as_bytes());
    if actual != crc {
        return Err(WalError::Corrupt(format!(
            "checkpoint body crc mismatch (stored {crc:08x}, actual {actual:08x})"
        )));
    }
    let structure = parse_structure(body)
        .map_err(|e| WalError::Corrupt(format!("checkpoint body line {}: {}", e.line, e.msg)))?;
    Ok((structure, epoch, fingerprint))
}

/// An open write-ahead log: appends commit records, takes checkpoints,
/// and tracks durability health.
#[derive(Debug)]
pub struct Wal<S: WalStore> {
    store: S,
    policy: FsyncPolicy,
    synced_at: Instant,
    dirty: bool,
    log_bytes: u64,
    checkpoint_epoch: u64,
    appends: u64,
    syncs: u64,
    checkpoints: u64,
}

impl<S: WalStore> Wal<S> {
    /// Opens a WAL directory and recovers its state.
    ///
    /// With a checkpoint present, the checkpoint is restored at its
    /// recorded epoch and verified against its recorded fingerprint;
    /// without one, `base` seeds the state (a fresh directory). The log
    /// tail is then scanned, any torn tail truncated, and the surviving
    /// records replayed in order — each replayed commit must land on
    /// exactly the epoch and fingerprint recorded at commit time, or
    /// recovery refuses with an error rather than serve a diverged
    /// state.
    pub fn recover(
        mut store: S,
        policy: FsyncPolicy,
        base: Option<Structure>,
    ) -> Result<(Wal<S>, Recovery), WalError> {
        let ckpt = store.read_checkpoint()?;
        let had_checkpoint = ckpt.is_some();
        let (mut delta, checkpoint_epoch) = match ckpt {
            Some(bytes) => {
                let (s, epoch, recorded) = decode_checkpoint(&bytes)?;
                let delta = DeltaStructure::restore(s, epoch);
                let replayed = delta.snapshot().fingerprint();
                if replayed != recorded {
                    return Err(WalError::FingerprintMismatch {
                        epoch,
                        recorded,
                        replayed,
                    });
                }
                (delta, epoch)
            }
            None => match base {
                Some(s) => {
                    let epoch = s.epoch();
                    (DeltaStructure::restore(s, epoch), epoch)
                }
                None => {
                    return Err(WalError::Corrupt(
                        "no checkpoint and no base structure".to_string(),
                    ))
                }
            },
        };

        let image = store.read_log()?;
        let decoded = decode_log(&image);
        let truncated_bytes = (image.len() - decoded.valid_len) as u64;
        if truncated_bytes > 0 {
            store.truncate_log(decoded.valid_len as u64)?;
        }
        let mut replayed = 0u64;
        let mut skipped = 0u64;
        for rec in &decoded.records {
            if rec.epoch <= delta.epoch() {
                skipped += 1;
                continue;
            }
            if rec.epoch != delta.epoch() + 1 {
                return Err(WalError::Corrupt(format!(
                    "epoch gap: log record {} follows state at {}",
                    rec.epoch,
                    delta.epoch()
                )));
            }
            let info = delta.apply(&rec.ops).map_err(|e| {
                WalError::Corrupt(format!("replay failed at epoch {}: {e}", rec.epoch))
            })?;
            if info.epoch != rec.epoch {
                return Err(WalError::Corrupt(format!(
                    "replay of record {} landed on epoch {}",
                    rec.epoch, info.epoch
                )));
            }
            let fp = delta.snapshot().fingerprint();
            if fp != rec.fingerprint {
                return Err(WalError::FingerprintMismatch {
                    epoch: rec.epoch,
                    recorded: rec.fingerprint,
                    replayed: fp,
                });
            }
            replayed += 1;
        }

        let fingerprint = delta.snapshot().fingerprint();
        let wal = Wal {
            store,
            policy,
            synced_at: Instant::now(),
            dirty: false,
            log_bytes: decoded.valid_len as u64,
            checkpoint_epoch,
            appends: 0,
            syncs: 0,
            checkpoints: 0,
        };
        Ok((
            wal,
            Recovery {
                delta,
                had_checkpoint,
                checkpoint_epoch,
                replayed,
                skipped,
                truncated_bytes,
                fingerprint,
            },
        ))
    }

    /// Appends one commit record and applies the fsync policy. When this
    /// returns `Ok`, the record is durable per policy — the caller may
    /// acknowledge the update. On `Err` the record must be treated as
    /// never written: roll the in-memory commit back and stop
    /// acknowledging.
    pub fn append_commit(
        &mut self,
        epoch: u64,
        fingerprint: u64,
        ops: &[TupleOp],
    ) -> io::Result<AppendInfo> {
        let bytes = encode_commit(epoch, fingerprint, ops);
        self.store.append_log(&bytes)?;
        self.dirty = true;
        self.log_bytes += bytes.len() as u64;
        self.appends += 1;
        let sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(d) => self.synced_at.elapsed() >= d,
            FsyncPolicy::Never => false,
        };
        if sync {
            self.sync()?;
        }
        Ok(AppendInfo {
            bytes: bytes.len() as u64,
            synced: sync,
        })
    }

    /// Forces an fsync of all appended records (used at drain and by the
    /// interval policy).
    pub fn sync(&mut self) -> io::Result<()> {
        self.store.sync_log()?;
        self.dirty = false;
        self.synced_at = Instant::now();
        self.syncs += 1;
        Ok(())
    }

    /// Atomically replaces the checkpoint with a snapshot of `s` and
    /// empties the log. A crash between the replacement and the log
    /// reset is harmless: replay skips records the checkpoint already
    /// contains.
    pub fn checkpoint(&mut self, s: &Structure) -> io::Result<()> {
        let image = encode_checkpoint(s);
        self.store.write_checkpoint(&image)?;
        self.store.reset_log()?;
        self.log_bytes = 0;
        self.dirty = false;
        self.synced_at = Instant::now();
        self.checkpoint_epoch = s.epoch();
        self.checkpoints += 1;
        Ok(())
    }

    /// Age of the oldest unsynced record (zero when everything appended
    /// is durable).
    pub fn unsynced_age(&self) -> Duration {
        if self.dirty {
            self.synced_at.elapsed()
        } else {
            Duration::ZERO
        }
    }

    /// Log bytes accumulated since the last checkpoint.
    pub fn log_bytes(&self) -> u64 {
        self.log_bytes
    }

    /// Epoch of the last checkpoint.
    pub fn checkpoint_epoch(&self) -> u64 {
        self.checkpoint_epoch
    }

    /// Records appended since open.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Fsyncs performed since open.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Checkpoints taken since open.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Consumes the WAL, returning its store (the fuzzer crashes a
    /// workload, then recovers from what survived in the store).
    pub fn into_store(self) -> S {
        self.store
    }
}

/// Read-only scan of a WAL directory: checkpoint header, per-record
/// summaries, and torn-tail accounting. Unlike [`Wal::recover`] this
/// never modifies the store — a torn tail is reported, not truncated.
pub fn inspect<S: WalStore>(store: &mut S) -> Result<Inspection, WalError> {
    let checkpoint = match store.read_checkpoint()? {
        Some(bytes) => {
            let (s, epoch, fingerprint) = decode_checkpoint(&bytes)?;
            Some((epoch, fingerprint, s.order()))
        }
        None => None,
    };
    let image = store.read_log()?;
    let decoded = decode_log(&image);
    Ok(Inspection {
        checkpoint,
        records: decoded
            .records
            .iter()
            .map(|r| (r.epoch, r.fingerprint, r.ops.len()))
            .collect(),
        valid_bytes: decoded.valid_len as u64,
        torn_bytes: (image.len() - decoded.valid_len) as u64,
        torn_reason: decoded.torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_structures::StructureBuilder;

    fn base() -> Structure {
        let mut b = StructureBuilder::new();
        b.declare("E", 2);
        b.declare("P", 1);
        b.ensure_universe(8);
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            b.try_insert("E", &[u, v]).unwrap();
        }
        b.try_insert("P", &[0]).unwrap();
        b.finish()
    }

    fn commit(delta: &mut DeltaStructure, wal: &mut Wal<MemStore>, ops: &[TupleOp]) {
        let info = delta.apply(ops).unwrap();
        assert!(info.changed > 0);
        wal.append_commit(info.epoch, delta.snapshot().fingerprint(), ops)
            .unwrap();
    }

    #[test]
    fn fresh_dir_checkpoint_log_replay_roundtrip() {
        let (mut wal, rec) =
            Wal::recover(MemStore::new(), FsyncPolicy::Always, Some(base())).unwrap();
        assert!(!rec.had_checkpoint);
        let mut delta = rec.delta;
        wal.checkpoint(delta.current()).unwrap();
        commit(&mut delta, &mut wal, &[TupleOp::insert("E", &[3, 4])]);
        commit(&mut delta, &mut wal, &[TupleOp::delete("P", &[0])]);
        let want = delta.snapshot().fingerprint();
        assert_eq!(wal.appends(), 2);
        assert_eq!(wal.syncs(), 2);

        let store = wal.into_store();
        let (_, rec2) = Wal::recover(store, FsyncPolicy::Always, None).unwrap();
        assert!(rec2.had_checkpoint);
        assert_eq!(rec2.replayed, 2);
        assert_eq!(rec2.truncated_bytes, 0);
        assert_eq!(rec2.fingerprint, want);
        assert_eq!(rec2.delta.epoch(), 2);
    }

    #[test]
    fn torn_tail_is_truncated_and_never_served() {
        let (mut wal, rec) =
            Wal::recover(MemStore::new(), FsyncPolicy::Always, Some(base())).unwrap();
        let mut delta = rec.delta;
        wal.checkpoint(delta.current()).unwrap();
        commit(&mut delta, &mut wal, &[TupleOp::insert("E", &[3, 4])]);
        let durable_fp = delta.snapshot().fingerprint();
        // A torn half-record at the tail.
        let mut store = wal.into_store();
        let torn = encode_commit(2, 0x1234, &[TupleOp::insert("E", &[4, 5])]);
        store.append_log(&torn[..torn.len() / 2]).unwrap();
        store.sync_log().unwrap();

        let (wal2, rec2) = Wal::recover(store, FsyncPolicy::Always, None).unwrap();
        assert_eq!(rec2.replayed, 1);
        assert!(rec2.truncated_bytes > 0);
        assert_eq!(rec2.fingerprint, durable_fp);
        // The truncation is durable: a second recovery sees a clean log.
        let (_, rec3) = Wal::recover(wal2.into_store(), FsyncPolicy::Always, None).unwrap();
        assert_eq!(rec3.truncated_bytes, 0);
        assert_eq!(rec3.fingerprint, durable_fp);
    }

    #[test]
    fn fingerprint_mismatch_refuses_to_serve() {
        let (mut wal, rec) =
            Wal::recover(MemStore::new(), FsyncPolicy::Always, Some(base())).unwrap();
        let mut delta = rec.delta;
        wal.checkpoint(delta.current()).unwrap();
        let info = delta.apply(&[TupleOp::insert("E", &[3, 4])]).unwrap();
        // Record a *wrong* fingerprint, as if the in-memory state had
        // diverged from what was logged.
        wal.append_commit(info.epoch, 0xBAD0_BAD0, &[TupleOp::insert("E", &[3, 4])])
            .unwrap();
        let err = Wal::recover(wal.into_store(), FsyncPolicy::Always, None).unwrap_err();
        assert!(matches!(
            err,
            WalError::FingerprintMismatch { epoch: 1, .. }
        ));
    }

    #[test]
    fn mid_checkpoint_crash_skips_already_contained_records() {
        // Checkpoint replaced but log not yet reset: replay must skip
        // the records the checkpoint already contains.
        let (mut wal, rec) =
            Wal::recover(MemStore::new(), FsyncPolicy::Always, Some(base())).unwrap();
        let mut delta = rec.delta;
        wal.checkpoint(delta.current()).unwrap();
        commit(&mut delta, &mut wal, &[TupleOp::insert("E", &[3, 4])]);
        commit(&mut delta, &mut wal, &[TupleOp::insert("E", &[4, 5])]);
        let want = delta.snapshot().fingerprint();
        let mut store = wal.into_store();
        // Simulate the crash window: write the new checkpoint image
        // directly, leaving the old log in place.
        store
            .write_checkpoint(&encode_checkpoint(delta.current()))
            .unwrap();
        let (_, rec2) = Wal::recover(store, FsyncPolicy::Always, None).unwrap();
        assert_eq!(rec2.skipped, 2);
        assert_eq!(rec2.replayed, 0);
        assert_eq!(rec2.fingerprint, want);
    }

    #[test]
    fn interval_and_never_policies_defer_syncs() {
        let (mut wal, rec) = Wal::recover(
            MemStore::new(),
            FsyncPolicy::Interval(Duration::from_secs(3600)),
            Some(base()),
        )
        .unwrap();
        let mut delta = rec.delta;
        wal.checkpoint(delta.current()).unwrap();
        let info = delta.apply(&[TupleOp::insert("E", &[3, 4])]).unwrap();
        let a = wal
            .append_commit(info.epoch, delta.snapshot().fingerprint(), &[])
            .unwrap();
        assert!(!a.synced);
        assert!(wal.unsynced_age() > Duration::ZERO || wal.log_bytes() > 0);
        wal.sync().unwrap();
        assert_eq!(wal.unsynced_age(), Duration::ZERO);
    }

    #[test]
    fn fsync_policy_parses() {
        use std::str::FromStr;
        assert_eq!(
            FsyncPolicy::from_str("always").unwrap(),
            FsyncPolicy::Always
        );
        assert_eq!(FsyncPolicy::from_str("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::from_str("interval:250").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(FsyncPolicy::from_str("sometimes").is_err());
        assert_eq!(FsyncPolicy::Always.to_string(), "always");
        assert_eq!(
            FsyncPolicy::Interval(Duration::from_millis(250)).to_string(),
            "interval:250"
        );
    }

    #[test]
    fn inspect_reports_without_truncating() {
        let (mut wal, rec) =
            Wal::recover(MemStore::new(), FsyncPolicy::Always, Some(base())).unwrap();
        let mut delta = rec.delta;
        wal.checkpoint(delta.current()).unwrap();
        commit(&mut delta, &mut wal, &[TupleOp::insert("E", &[3, 4])]);
        let mut store = wal.into_store();
        store.append_log(b"torn!").unwrap();
        store.sync_log().unwrap();
        let before = store.read_log().unwrap();
        let insp = inspect(&mut store).unwrap();
        assert_eq!(insp.records.len(), 1);
        assert_eq!(insp.records[0].0, 1);
        assert_eq!(insp.torn_bytes, 5);
        assert!(insp.torn_reason.is_some());
        let (epoch, _, order) = insp.checkpoint.unwrap();
        assert_eq!((epoch, order), (0, 8));
        // Inspect never modifies the store.
        assert_eq!(store.read_log().unwrap(), before);
    }
}
