//! Hand-rolled CRC32 (IEEE 802.3): reflected polynomial `0xEDB88320`,
//! init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` — the same parameters as
//! zlib's `crc32`, computed byte-at-a-time from a compile-time table so
//! the crate stays dependency-free.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"commit 7 00000000deadbeef".to_vec();
        let c0 = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), c0, "bit {i} undetected");
        }
    }
}
