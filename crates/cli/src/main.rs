//! `foc` — command-line FOC1(P) evaluation.
//!
//! ```text
//! foc check <structure.foc> "<sentence>"      [--engine naive|local|cover] [--threads N]
//! foc eval  <structure.foc> "<ground term>"   [--engine …]
//! foc count <structure.foc> "<formula>" --vars x,y [--engine …]
//! foc stats <structure.foc> [--cover-r N]
//! foc gen   <class> --n N [--seed S] [-o out.foc]
//!     classes: tree, grid, path, cycle, star, clique, deg3, gnm
//! ```
//!
//! Structure files use the line-oriented format of
//! `foc_structures::io` (see `foc gen … -o example.foc` for a sample).

use std::process::ExitCode;

use foc_core::{EngineKind, Evaluator};
use foc_logic::parse::{parse_formula, parse_term};
use foc_logic::Var;
use foc_structures::gen as generators;
use foc_structures::io::{parse_structure, write_structure};
use foc_structures::Structure;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("foc: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  foc check <structure.foc> \"<sentence>\"      [--engine naive|local|cover] [--threads N]
  foc eval  <structure.foc> \"<ground term>\"   [--engine ...]
  foc count <structure.foc> \"<formula>\" --vars x,y [--engine ...]
  foc stats <structure.foc> [--cover-r N]
  foc gen   <tree|grid|path|cycle|star|clique|deg3|gnm> --n N [--seed S] [-o out.foc]";

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "check" => cmd_check(rest),
        "eval" => cmd_eval(rest),
        "count" => cmd_count(rest),
        "stats" => cmd_stats(rest),
        "gen" => cmd_gen(rest),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") || a == "-o" {
            skip = true; // all our flags take a value
            let _ = i;
            continue;
        }
        out.push(a);
    }
    out
}

fn engine_of(args: &[String]) -> Result<Evaluator, String> {
    let kind = match flag_value(args, "--engine").unwrap_or("local") {
        "naive" => EngineKind::Naive,
        "local" => EngineKind::Local,
        "cover" => EngineKind::Cover,
        other => return Err(format!("unknown engine {other:?}")),
    };
    let threads: usize = match flag_value(args, "--threads") {
        Some(v) => v.parse().map_err(|_| format!("invalid --threads {v:?}"))?,
        None => 1,
    };
    Evaluator::builder()
        .kind(kind)
        .threads(threads)
        .build()
        .map_err(|e| e.to_string())
}

fn load(path: &str) -> Result<Structure, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_structure(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [path, src] = pos.as_slice() else {
        return Err("check needs a structure file and a sentence".into());
    };
    let s = load(path)?;
    let f = parse_formula(src).map_err(|e| e.to_string())?;
    if !f.is_sentence() {
        return Err(format!(
            "formula has free variables {:?}; use `foc count` instead",
            f.free_vars()
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        ));
    }
    let ev = engine_of(args)?;
    let t0 = std::time::Instant::now();
    let ans = ev.check_sentence(&s, &f).map_err(|e| e.to_string())?;
    println!("{ans}");
    eprintln!("[{:?} engine, {:?}]", ev.kind(), t0.elapsed());
    Ok(())
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [path, src] = pos.as_slice() else {
        return Err("eval needs a structure file and a ground term".into());
    };
    let s = load(path)?;
    let t = parse_term(src).map_err(|e| e.to_string())?;
    if !t.is_ground() {
        return Err("term has free variables; use `foc count` for formulas".into());
    }
    let ev = engine_of(args)?;
    let t0 = std::time::Instant::now();
    let val = ev.eval_ground(&s, &t).map_err(|e| e.to_string())?;
    println!("{val}");
    eprintln!("[{:?} engine, {:?}]", ev.kind(), t0.elapsed());
    Ok(())
}

fn cmd_count(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [path, src] = pos.as_slice() else {
        return Err("count needs a structure file and a formula".into());
    };
    let vars: Vec<Var> = flag_value(args, "--vars")
        .ok_or("count needs --vars x,y,…")?
        .split(',')
        .map(|v| Var::new(v.trim()))
        .collect();
    let s = load(path)?;
    let f = parse_formula(src).map_err(|e| e.to_string())?;
    let ev = engine_of(args)?;
    let t0 = std::time::Instant::now();
    let val = ev.count(&s, &f, &vars).map_err(|e| e.to_string())?;
    println!("{val}");
    eprintln!("[{:?} engine, {:?}]", ev.kind(), t0.elapsed());
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err("stats needs a structure file".into());
    };
    let s = load(path)?;
    let g = s.gaifman();
    println!("order |A|      = {}", s.order());
    println!("size ‖A‖       = {}", s.size());
    println!("signature      = {:?}", s.signature());
    println!("gaifman edges  = {}", g.num_edges());
    println!("max degree     = {}", g.max_degree());
    let (_, comps) = g.components();
    println!("components     = {comps}");
    let r: u32 = flag_value(args, "--cover-r")
        .unwrap_or("2")
        .parse()
        .map_err(|_| "--cover-r needs an integer")?;
    let cov = foc_covers::cover::build_cover(g, r);
    println!(
        "({r},{})-cover   = {} clusters, max cover degree {}, max radius {}",
        2 * r,
        cov.clusters.len(),
        cov.max_degree(),
        cov.max_radius(g),
    );
    let mut rng = StdRng::seed_from_u64(1);
    let game = foc_covers::splitter::estimate_game_length(g, 1, 3, &mut rng, 256);
    println!(
        "splitter λ̂(1)  = {} rounds ({})",
        game.rounds,
        if game.splitter_won {
            "Splitter wins"
        } else {
            "cap reached — dense?"
        }
    );
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [class] = pos.as_slice() else {
        return Err("gen needs a class name".into());
    };
    let n: u32 = flag_value(args, "--n")
        .ok_or("gen needs --n")?
        .parse()
        .map_err(|_| "--n needs an integer")?;
    let seed: u64 = flag_value(args, "--seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "--seed needs an integer")?;
    let mut rng = StdRng::seed_from_u64(seed);
    let s = match class.as_str() {
        "tree" => generators::random_tree(n, &mut rng),
        "grid" => {
            let side = (n as f64).sqrt().round().max(1.0) as u32;
            generators::grid(side, side)
        }
        "path" => generators::path(n),
        "cycle" => generators::cycle(n.max(3)),
        "star" => generators::star(n),
        "clique" => generators::clique(n),
        "deg3" => generators::bounded_degree(n, 3, 3 * n as usize, &mut rng),
        "gnm" => generators::gnm(n, 2 * n as usize, &mut rng),
        other => return Err(format!("unknown class {other:?}")),
    };
    let text = write_structure(&s);
    match flag_value(args, "-o") {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} ({} elements, size {})", path, s.order(), s.size());
        }
        None => print!("{text}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let args = argv(&["check", "db.foc", "true", "--engine", "naive"]);
        assert_eq!(flag_value(&args, "--engine"), Some("naive"));
        assert_eq!(flag_value(&args, "--vars"), None);
    }

    #[test]
    fn positionals_skip_flag_values() {
        let args = argv(&["db.foc", "--engine", "naive", "E(x,y)", "--vars", "x,y"]);
        let pos = positional(&args);
        assert_eq!(pos, vec!["db.foc", "E(x,y)"]);
    }

    #[test]
    fn engine_selection() {
        assert_eq!(
            engine_of(&argv(&["--engine", "cover"])).unwrap().kind(),
            EngineKind::Cover
        );
        assert_eq!(engine_of(&argv(&[])).unwrap().kind(), EngineKind::Local);
        assert!(engine_of(&argv(&["--engine", "warp"])).is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&argv(&[])).is_err());
    }

    #[test]
    fn end_to_end_in_tempdir() {
        let dir = std::env::temp_dir().join(format!("foc-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.foc");
        let pstr = path.to_str().unwrap().to_string();
        run(&argv(&["gen", "grid", "--n", "16", "-o", &pstr])).unwrap();
        run(&argv(&["stats", &pstr])).unwrap();
        run(&argv(&["check", &pstr, "exists x. #(y). E(x,y) >= 4"])).unwrap();
        run(&argv(&["eval", &pstr, "#(x,y). E(x,y)"])).unwrap();
        run(&argv(&["count", &pstr, "E(x,y)", "--vars", "x,y"])).unwrap();
        assert!(run(&argv(&["check", &pstr, "E(x,y)"])).is_err()); // free vars
        assert!(run(&argv(&["eval", &pstr, "#(y). E(x,y)"])).is_err()); // free vars
        std::fs::remove_dir_all(&dir).ok();
    }
}
