//! `foc` — command-line FOC1(P) evaluation.
//!
//! ```text
//! foc check   <structure.foc> "<sentence>"      [--engine naive|local|cover] [--threads N]
//! foc eval    <structure.foc> "<ground term>"   [--engine …]
//! foc count   <structure.foc> "<formula>" --vars x,y [--engine …]
//! foc explain <structure.foc> "<sentence or ground term>" [--engine …]
//! foc stats   <structure.foc> [--cover-r N]
//! foc gen     <class> --n N [--seed S] [-o out.foc]
//!     classes: tree, grid, path, cycle, star, clique, deg3, gnm
//! foc fuzz    [--seed S] [--budget 30s | --iters N] [--corpus DIR] [--replay]
//!             [--updates [--steps N]] [--crash [--checkpoint-every N]]
//! foc serve   <structure.foc> [--port N] [--max-inflight N] [--queue N]
//!             [--mem-limit <bytes>] [--drain-timeout <ms>]
//!             [--telemetry-addr <host:port>] [--trace-log <path>]
//!             [--postmortem-dir <dir>] [--trace-sample N]
//!             [--slow-query <ms>] [--no-tracing]
//!             [--wal-dir <dir>] [--fsync always|never|interval[:ms]]
//!             [--max-frame-bytes N]
//! foc recover <wal-dir> [--structure <base.foc>] [-o out.foc]
//! foc wal     inspect <wal-dir>
//! foc top     <host:port> [--interval <ms>] [--once]
//! ```
//!
//! `foc fuzz` runs the cross-engine differential harness (`foc-diff`):
//! random FOC1(P) queries on random structures, evaluated under the
//! whole engine matrix, with metamorphic checks, shrinking, and a
//! replayable corpus. The run is deterministic for a fixed seed — a
//! `--budget` is a fixed iteration quota, not a wall-clock deadline —
//! and exits 1 when any divergence is found. With `--updates` it fuzzes
//! the live-update machinery instead: seeded interleavings of delta
//! commits and queries, comparing delta-maintained evaluation (migrated
//! term cache, repaired covers) against a from-scratch rebuild oracle
//! at every step. With `--crash` it sweeps kill points over the
//! `foc-wal` durability layer instead: a seeded mutation workload is
//! crashed after every single IO unit and recovered, asserting recovery
//! always lands on the last durably acknowledged state.
//!
//! `foc serve --wal-dir <dir>` makes live updates crash-safe: every
//! effective commit is appended to a write-ahead log before the result
//! frame is sent (durable per `--fsync`), snapshot checkpoints bound
//! recovery replay, and a restart from the same directory recovers
//! exactly the acknowledged state. `foc recover` performs that recovery
//! offline (exit 1 on a corrupt or diverged directory); `foc wal
//! inspect` is the read-only view. SIGINT/SIGTERM trigger the same
//! graceful drain as stdin EOF.
//!
//! `foc serve` can additionally expose a telemetry listener on a
//! second socket (`--telemetry-addr`): `GET /metrics` answers in
//! Prometheus text exposition format, `GET /healthz` is drain- and
//! pressure-aware, and `GET /stats` is a one-line JSON snapshot of live
//! server state. `foc top` polls that `/stats` endpoint: one compact
//! status line per poll, or the full field table with `--once`.
//!
//! Every evaluation subcommand also accepts `--trace` (stream finished
//! spans to stderr), `--profile` (print the per-phase wall-time table),
//! and `--metrics-json <path>` (write the session's counters,
//! histograms, and span list as JSON). `foc explain` runs the query
//! with an in-memory span sink and renders the full span tree plus the
//! metrics table.
//!
//! Structure files use the line-oriented format of
//! `foc_structures::io` (see `foc gen … -o example.foc` for a sample).

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use foc_core::{DegradePolicy, EngineKind, EngineStats, Evaluator, Session};
use foc_logic::parse::{parse_formula, parse_term};
use foc_logic::Var;
use foc_obs::{build_tree, render_metrics_table, render_tree, session_json, MemorySink, Sink};
use foc_structures::gen as generators;
use foc_structures::io::{parse_structure, write_structure};
use foc_structures::Structure;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// CLI failure, classified for the exit code:
///
/// * `Usage` — the invocation itself is malformed; exit 2 and print the
///   usage text.
/// * `Runtime` — the invocation is fine but the work failed (missing
///   file, parse error, evaluation error); exit 1 with a one-line
///   diagnostic.
/// * `Interrupted` — the evaluation hit its resource budget; exit 3
///   with the phase and fuel spent.
#[derive(Debug)]
enum CliError {
    Usage(String),
    Runtime(String),
    Interrupted(foc_core::Interrupt),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Runtime(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError::Runtime(msg.to_string())
    }
}

impl From<foc_core::Error> for CliError {
    fn from(e: foc_core::Error) -> CliError {
        match e {
            foc_core::Error::Interrupted(i) => CliError::Interrupted(i),
            other => CliError::Runtime(other.to_string()),
        }
    }
}

type CliResult<T = ()> = Result<T, CliError>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("foc: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("foc: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Interrupted(i)) => {
            eprintln!("foc: {i}");
            ExitCode::from(3)
        }
    }
}

const USAGE: &str = "\
usage:
  foc check   <structure.foc> \"<sentence>\"      [--engine naive|local|cover] [options]
  foc eval    <structure.foc> \"<ground term>\"   [--engine ...] [options]
  foc count   <structure.foc> \"<formula>\" --vars x,y [--engine ...] [options]
  foc explain <structure.foc> \"<sentence or ground term>\" [--engine ...] [options]
  foc stats   <structure.foc> [--cover-r N]
  foc gen     <tree|grid|path|cycle|star|clique|deg3|gnm> --n N [--seed S] [-o out.foc]
  foc fuzz    [--seed S] [--budget 30s | --iters N] [--corpus DIR] [--replay]
              [--max-order N] [--no-shrink] [--no-meta] [--no-anytime]
              [--case-timeout <ms>] [--updates [--steps N]]
              [--crash [--steps N] [--checkpoint-every N]]
              [--metrics-json <path>]
  foc serve   <structure.foc> [--port N] [--max-inflight N] [--queue N]
              [--mem-limit <bytes>] [--drain-timeout <ms>] [--max-timeout <ms>]
              [--max-fuel N] [--engine ...] [--threads N] [--metrics-json <path>]
              [--telemetry-addr <host:port>] [--trace-log <path>]
              [--postmortem-dir <dir>] [--trace-sample N] [--trace-seed S]
              [--slow-query <ms>] [--no-tracing]
              [--wal-dir <dir>] [--fsync always|never|interval[:ms]]
              [--wal-checkpoint-bytes N] [--max-frame-bytes N]
              (JSON-lines over TCP; drains on stdin EOF, a \"drain\" line,
               SIGINT, or SIGTERM; exit 3 if the drain deadline
               interrupted in-flight requests)
  foc recover <wal-dir> [--structure <base.foc>] [-o out.foc]
              (recover a WAL directory offline: verify the checkpoint,
               truncate any torn log tail, replay, and report the
               recovered epoch/fingerprint; exit 1 on corruption)
  foc wal     inspect <wal-dir>
              (read-only scan: checkpoint header, per-record summaries,
               torn-tail accounting; never modifies the directory)
  foc top     <host:port> [--interval <ms>] [--once]
              (poll a serve telemetry listener's /stats endpoint)

options:
  --engine naive|local|cover   evaluation strategy (default: local)
  --threads N                  worker threads; 0 means one per hardware
                               thread (default: 1)
  --trace                      stream finished spans to stderr as
                               [foc-trace] lines
  --profile                    print the per-phase wall-time table and
                               work counters after the answer
  --metrics-json <path>        write the session's phases, counters,
                               histograms, and spans as JSON to <path>
  --timeout <ms>               wall-clock deadline for the evaluation;
                               interrupted runs exit with code 3
  --fuel <n>                   deterministic work allowance (guard
                               checks); interrupted runs exit with
                               code 3
  --strict                     surface capability errors instead of
                               degrading down the engine ladder
  --anytime                    iterative deepening (check/eval/count/
                               explain): run weaker passes first and, on
                               a tripped budget, print the best-so-far
                               answer with a confidence tag (exact,
                               approx, lower_bound, partial) instead of
                               exiting 3; exit 3 only when no pass
                               banked an answer
  --approx                     answer eval/count through the (ε, δ)
                               sampling estimator: prints `estimate
                               ±bound` where the additive bound holds
                               with probability ≥ 1−δ (spaces small
                               enough to enumerate are answered
                               exactly); with --anytime the estimator
                               runs as its own ladder rung instead
  --epsilon <f>                the estimator's error fraction in (0, 1]
                               (default 0.1; the bound is ⌈ε·n^k⌉ for a
                               k-variable count over n elements)";

/// Flags that take no value (everything else consumes the next arg).
const BOOL_FLAGS: &[&str] = &[
    "--trace",
    "--profile",
    "--strict",
    "--replay",
    "--no-shrink",
    "--no-meta",
    "--no-tracing",
    "--once",
    "--anytime",
    "--no-anytime",
    "--approx",
    "--updates",
    "--crash",
];

fn run(args: &[String]) -> CliResult {
    let Some(cmd) = args.first() else {
        return Err(CliError::usage("missing subcommand"));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "check" => cmd_check(rest),
        "eval" => cmd_eval(rest),
        "count" => cmd_count(rest),
        "explain" => cmd_explain(rest),
        "stats" => cmd_stats(rest),
        "gen" => cmd_gen(rest),
        "fuzz" => cmd_fuzz(rest),
        "serve" => cmd_serve(rest),
        "recover" => cmd_recover(rest),
        "wal" => cmd_wal(rest),
        "top" => cmd_top(rest),
        other => Err(CliError::usage(format!("unknown subcommand {other:?}"))),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args.iter() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") || a == "-o" {
            skip = !BOOL_FLAGS.contains(&a.as_str());
            continue;
        }
        out.push(a);
    }
    out
}

/// Builds the engine from the shared flags, optionally attaching a span
/// sink (the in-memory sink of `foc explain` / `--metrics-json`).
fn engine_with_sink(args: &[String], sink: Option<Arc<dyn Sink>>) -> CliResult<Evaluator> {
    let kind = match flag_value(args, "--engine").unwrap_or("local") {
        "naive" => EngineKind::Naive,
        "local" => EngineKind::Local,
        "cover" => EngineKind::Cover,
        other => return Err(CliError::usage(format!("unknown engine {other:?}"))),
    };
    let threads: usize = match flag_value(args, "--threads") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --threads {v:?}")))?,
        None => 1,
    };
    let mut b = Evaluator::builder()
        .kind(kind)
        .threads(threads)
        .trace(has_flag(args, "--trace"));
    if let Some(v) = flag_value(args, "--timeout") {
        let ms: u64 = v
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --timeout {v:?} (milliseconds)")))?;
        b = b.timeout(Duration::from_millis(ms));
    }
    if let Some(v) = flag_value(args, "--fuel") {
        let fuel: u64 = v
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --fuel {v:?}")))?;
        b = b.fuel(fuel);
    }
    if has_flag(args, "--strict") {
        b = b.degrade(DegradePolicy::Strict);
    }
    if has_flag(args, "--approx") || flag_value(args, "--epsilon").is_some() {
        let cfg = match flag_value(args, "--epsilon") {
            Some(v) => {
                let eps: f64 = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("invalid --epsilon {v:?}")))?;
                foc_core::ApproxConfig::with_epsilon(eps)
            }
            None => foc_core::ApproxConfig::default(),
        };
        cfg.validate().map_err(|e| CliError::usage(e.to_string()))?;
        b = b.approx(cfg);
    }
    if let Some(s) = sink {
        b = b.sink(s);
    }
    b.build().map_err(|e| CliError::Runtime(e.to_string()))
}

/// Prints the `(ε, δ)` estimator's answer: `estimate ±bound` (or the
/// plain value when the space was enumerated exactly).
fn report_approx(ev: &Evaluator, v: &foc_core::ApproxValue, elapsed: Duration) {
    if v.exhaustive {
        println!("{}", v.estimate);
        eprintln!(
            "[{:?} engine, approx: space within sample budget, enumerated exactly, {elapsed:?}]",
            ev.kind()
        );
    } else {
        println!("{} ±{}", v.estimate, v.error_bound);
        eprintln!(
            "[{:?} engine, approx: {} samples, {elapsed:?}]",
            ev.kind(),
            v.samples
        );
    }
}

/// The `--profile` report: per-phase wall time plus the work counters.
fn profile_table(stats: &EngineStats) -> String {
    let mut out = String::new();
    out.push_str("phase        micros\n");
    for (name, d) in [
        ("materialize", stats.phase.materialize),
        ("decompose", stats.phase.decompose),
        ("cover", stats.phase.cover),
        ("eval", stats.phase.eval),
    ] {
        out.push_str(&format!("{name:<12} {}\n", d.as_micros()));
    }
    out.push_str(&format!(
        "markers={} clterms={} basics={} fallbacks={} sentences={}\n",
        stats.markers_created,
        stats.clterms,
        stats.basics,
        stats.naive_fallbacks,
        stats.sentences_resolved
    ));
    out.push_str(&format!(
        "clusters={} covers={} removals={} peak_cluster={}\n",
        stats.clusters, stats.covers_built, stats.removals, stats.peak_cluster
    ));
    out.push_str(&format!(
        "cache hits/misses={}/{} balls={}\n",
        stats.cache_hits, stats.cache_misses, stats.balls
    ));
    out
}

/// Shared tail of the evaluation subcommands: snapshot the session,
/// drop it (finishing the root span), then honour `--profile` and
/// `--metrics-json`.
fn finish_session(
    args: &[String],
    ev: &Evaluator,
    session: Session<'_>,
    mem: Option<Arc<MemorySink>>,
) -> CliResult {
    let stats = session.stats();
    let snap = session.observer().metrics().snapshot();
    drop(session);
    if has_flag(args, "--profile") {
        eprint!("{}", profile_table(&stats));
    }
    if let Some(path) = flag_value(args, "--metrics-json") {
        let spans = mem.map(|m| m.spans()).unwrap_or_default();
        let phases = [
            ("materialize", stats.phase.materialize.as_micros() as u64),
            ("decompose", stats.phase.decompose.as_micros() as u64),
            ("cover", stats.phase.cover.as_micros() as u64),
            ("eval", stats.phase.eval.as_micros() as u64),
        ];
        let engine = format!("{:?}", ev.kind()).to_lowercase();
        let json = session_json(&engine, &phases, &snap, &spans);
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// The in-memory sink backing `--metrics-json` span capture, when asked
/// for.
fn metrics_sink(args: &[String]) -> Option<Arc<MemorySink>> {
    flag_value(args, "--metrics-json").map(|_| MemorySink::shared())
}

/// Renders the per-pass table of an `--anytime` run: one row per rung
/// of the deepening ladder, in execution order.
fn anytime_table(passes: &[foc_core::PassReport]) -> String {
    use foc_core::{AnswerValue, PassStatus};
    let mut s = String::from(
        "pass    status               value  confidence      micros      fuel  progress\n",
    );
    for p in passes {
        let status = match &p.status {
            PassStatus::Completed => "completed".to_string(),
            PassStatus::Aborted => "aborted".to_string(),
            PassStatus::Tripped(i) => format!("tripped ({})", i.reason),
            PassStatus::Skipped(r) => format!("skipped ({r})"),
            PassStatus::Errored(_) => "errored".to_string(),
        };
        let value = match p.value {
            Some(AnswerValue::Bool(b)) => b.to_string(),
            Some(AnswerValue::Int(i)) => i.to_string(),
            None => "-".to_string(),
        };
        let confidence = p
            .confidence
            .map(|c| c.to_string())
            .unwrap_or_else(|| "-".to_string());
        s.push_str(&format!(
            "{:<7} {status:<20} {value:>5}  {confidence:<14} {:>7} {:>9}  {}/{}\n",
            p.pass.name(),
            p.micros,
            p.fuel_spent,
            p.clusters_done,
            p.clusters_total,
        ));
    }
    s
}

/// Shared tail of an `--anytime` evaluation: print the tagged answer,
/// the one-line engine note, and (with `--profile`) the pass table. A
/// banked answer is a success — exit 0 — even when the budget tripped;
/// the deepening driver only errs when *no* pass banked anything.
fn report_anytime<T: std::fmt::Display>(
    args: &[String],
    ev: &Evaluator,
    out: &foc_core::Anytime<T>,
    elapsed: Duration,
) {
    println!("{}", out.value);
    println!("confidence: {}", out.confidence);
    match &out.interrupt {
        Some(i) => eprintln!(
            "[{:?} engine, {elapsed:?}, best-so-far after {} during {}]",
            ev.kind(),
            i.reason,
            i.phase
        ),
        None => eprintln!("[{:?} engine, {elapsed:?}]", ev.kind()),
    }
    if has_flag(args, "--profile") {
        eprint!("{}", anytime_table(&out.passes));
    }
}

fn load(path: &str) -> CliResult<Structure> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(parse_structure(&text).map_err(|e| format!("{path}: {e}"))?)
}

fn cmd_check(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [path, src] = pos.as_slice() else {
        return Err(CliError::usage(
            "check needs a structure file and a sentence",
        ));
    };
    let s = load(path)?;
    let f = parse_formula(src).map_err(|e| e.to_string())?;
    if !f.is_sentence() {
        return Err(format!(
            "formula has free variables {:?}; use `foc count` instead",
            f.free_vars()
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        )
        .into());
    }
    let mem = metrics_sink(args);
    // A sentence has no count to estimate; the estimator only engages
    // through the anytime ladder's approx rung (on counting subterms of
    // future rungs) — a bare `check --approx` is a usage error.
    if has_flag(args, "--approx") && !has_flag(args, "--anytime") {
        return Err(CliError::usage(
            "check answers true/false; --approx applies to eval/count (or combine with --anytime)",
        ));
    }
    let ev = engine_with_sink(args, mem.clone().map(|m| m as Arc<dyn Sink>))?;
    if has_flag(args, "--anytime") {
        let t0 = std::time::Instant::now();
        let out =
            ev.check_sentence_anytime(&s, &f, &foc_core::AnytimeConfig::default(), None, None)?;
        report_anytime(args, &ev, &out, t0.elapsed());
        return Ok(());
    }
    let mut session = ev.session(&s);
    let t0 = std::time::Instant::now();
    let ans = session.check_sentence(&f)?;
    println!("{ans}");
    eprintln!("[{:?} engine, {:?}]", ev.kind(), t0.elapsed());
    finish_session(args, &ev, session, mem)
}

fn cmd_eval(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [path, src] = pos.as_slice() else {
        return Err(CliError::usage(
            "eval needs a structure file and a ground term",
        ));
    };
    let s = load(path)?;
    let t = parse_term(src).map_err(|e| e.to_string())?;
    if !t.is_ground() {
        return Err("term has free variables; use `foc count` for formulas".into());
    }
    let mem = metrics_sink(args);
    let ev = engine_with_sink(args, mem.clone().map(|m| m as Arc<dyn Sink>))?;
    if has_flag(args, "--anytime") {
        let t0 = std::time::Instant::now();
        let out =
            ev.eval_ground_anytime(&s, &t, &foc_core::AnytimeConfig::default(), None, None)?;
        report_anytime(args, &ev, &out, t0.elapsed());
        return Ok(());
    }
    if has_flag(args, "--approx") || flag_value(args, "--epsilon").is_some() {
        let t0 = std::time::Instant::now();
        let v = ev.approx_count(&s, &t)?;
        report_approx(&ev, &v, t0.elapsed());
        return Ok(());
    }
    let mut session = ev.session(&s);
    let t0 = std::time::Instant::now();
    let val = session.eval_ground(&t)?;
    println!("{val}");
    eprintln!("[{:?} engine, {:?}]", ev.kind(), t0.elapsed());
    finish_session(args, &ev, session, mem)
}

fn cmd_count(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [path, src] = pos.as_slice() else {
        return Err(CliError::usage(
            "count needs a structure file and a formula",
        ));
    };
    let vars: Vec<Var> = flag_value(args, "--vars")
        .ok_or_else(|| CliError::usage("count needs --vars x,y,…"))?
        .split(',')
        .map(|v| Var::new(v.trim()))
        .collect();
    let s = load(path)?;
    let f = parse_formula(src).map_err(|e| e.to_string())?;
    let mem = metrics_sink(args);
    let ev = engine_with_sink(args, mem.clone().map(|m| m as Arc<dyn Sink>))?;
    let t: Arc<foc_logic::Term> =
        Arc::new(foc_logic::Term::Count(vars.into_boxed_slice(), f.clone()));
    if has_flag(args, "--anytime") {
        let t0 = std::time::Instant::now();
        let out =
            ev.eval_ground_anytime(&s, &t, &foc_core::AnytimeConfig::default(), None, None)?;
        report_anytime(args, &ev, &out, t0.elapsed());
        return Ok(());
    }
    if has_flag(args, "--approx") || flag_value(args, "--epsilon").is_some() {
        let t0 = std::time::Instant::now();
        let v = ev.approx_count(&s, &t)?;
        report_approx(&ev, &v, t0.elapsed());
        return Ok(());
    }
    let mut session = ev.session(&s);
    let t0 = std::time::Instant::now();
    let val = session.eval_ground(&t)?;
    println!("{val}");
    eprintln!("[{:?} engine, {:?}]", ev.kind(), t0.elapsed());
    finish_session(args, &ev, session, mem)
}

/// `foc explain`: run a sentence or ground term with an in-memory span
/// sink and render the span tree, the metrics table, and the phase
/// profile. Works with every engine; the local and cover engines
/// produce the interesting trees.
fn cmd_explain(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [path, src] = pos.as_slice() else {
        return Err(CliError::usage(
            "explain needs a structure file and a sentence or ground term",
        ));
    };
    let s = load(path)?;
    let mem = MemorySink::shared();
    let ev = engine_with_sink(args, Some(mem.clone() as Arc<dyn Sink>))?;
    if has_flag(args, "--anytime") {
        return explain_anytime(&s, src, &ev, &mem);
    }
    let mut session = ev.session(&s);
    let t0 = std::time::Instant::now();
    let outcome: Result<String, foc_core::Error> = match parse_formula(src) {
        Ok(f) if f.is_sentence() => session.check_sentence(&f).map(|b| b.to_string()),
        _ => {
            let t = parse_term(src).map_err(|e| format!("not a sentence or term: {e}"))?;
            if !t.is_ground() {
                return Err("explain needs a sentence or a ground term (no free variables)".into());
            }
            session.eval_ground(&t).map(|v| v.to_string())
        }
    };
    let elapsed = t0.elapsed();
    // An interrupted run still renders the span tree and the metrics —
    // the partial trace shows which phase the budget cut short — and
    // then exits with the interrupt code.
    let (answer, interrupt) = match outcome {
        Ok(v) => (v, None),
        Err(foc_core::Error::Interrupted(i)) => (format!("interrupted ({i})"), Some(i)),
        Err(e) => return Err(e.into()),
    };
    let stats = session.stats();
    let snap = session.observer().metrics().snapshot();
    drop(session);
    println!("answer: {answer}");
    println!("engine: {:?} ({elapsed:?})", ev.kind());
    println!();
    println!("span tree:");
    print!("{}", render_tree(&build_tree(&mem.spans())));
    println!();
    println!("metrics:");
    print!("{}", render_metrics_table(&snap));
    println!();
    print!("{}", profile_table(&stats));
    if let Some(json_path) = flag_value(args, "--metrics-json") {
        let phases = [
            ("materialize", stats.phase.materialize.as_micros() as u64),
            ("decompose", stats.phase.decompose.as_micros() as u64),
            ("cover", stats.phase.cover.as_micros() as u64),
            ("eval", stats.phase.eval.as_micros() as u64),
        ];
        let engine = format!("{:?}", ev.kind()).to_lowercase();
        let json = session_json(&engine, &phases, &snap, &mem.spans());
        std::fs::write(json_path, json).map_err(|e| format!("cannot write {json_path}: {e}"))?;
        eprintln!("wrote {json_path}");
    }
    match interrupt {
        Some(i) => Err(CliError::Interrupted(i)),
        None => Ok(()),
    }
}

/// The `--anytime` arm of `foc explain`: run the deepening driver and
/// render the per-pass table in place of the single-session profile
/// (the passes run their own sessions, so there is no one phase table
/// to print). A banked answer exits 0 even when the budget tripped;
/// only a zero-progress run keeps the interrupt exit code, after still
/// rendering whatever spans the attempts produced.
fn explain_anytime(s: &Structure, src: &str, ev: &Evaluator, mem: &Arc<MemorySink>) -> CliResult {
    let cfg = foc_core::AnytimeConfig::default();
    let t0 = std::time::Instant::now();
    let run = match parse_formula(src) {
        Ok(f) if f.is_sentence() => ev
            .check_sentence_anytime(s, &f, &cfg, None, None)
            .map(|o| (o.value.to_string(), o.confidence, o.passes, o.interrupt)),
        _ => {
            let t = parse_term(src).map_err(|e| format!("not a sentence or term: {e}"))?;
            if !t.is_ground() {
                return Err("explain needs a sentence or a ground term (no free variables)".into());
            }
            ev.eval_ground_anytime(s, &t, &cfg, None, None)
                .map(|o| (o.value.to_string(), o.confidence, o.passes, o.interrupt))
        }
    };
    let elapsed = t0.elapsed();
    let (answer, confidence, passes, interrupt) = match run {
        Ok(out) => out,
        Err(foc_core::Error::Interrupted(i)) => {
            println!("answer: interrupted ({i}) — no pass banked an answer");
            println!("engine: {:?} ({elapsed:?})", ev.kind());
            println!();
            println!("span tree:");
            print!("{}", render_tree(&build_tree(&mem.spans())));
            return Err(CliError::Interrupted(i));
        }
        Err(e) => return Err(e.into()),
    };
    println!("answer: {answer}");
    println!("confidence: {confidence}");
    if let Some(i) = &interrupt {
        println!("budget: {i}");
    }
    println!("engine: {:?} ({elapsed:?})", ev.kind());
    println!();
    println!("passes:");
    print!("{}", anytime_table(&passes));
    println!();
    println!("span tree:");
    print!("{}", render_tree(&build_tree(&mem.spans())));
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err(CliError::usage("stats needs a structure file"));
    };
    let s = load(path)?;
    let g = s.gaifman();
    println!("order |A|      = {}", s.order());
    println!("size ‖A‖       = {}", s.size());
    println!("signature      = {:?}", s.signature());
    println!("gaifman edges  = {}", g.num_edges());
    println!("max degree     = {}", g.max_degree());
    let (_, comps) = g.components();
    println!("components     = {comps}");
    let r: u32 = flag_value(args, "--cover-r")
        .unwrap_or("2")
        .parse()
        .map_err(|_| CliError::usage("--cover-r needs an integer"))?;
    let cov = foc_covers::cover::build_cover(g, r);
    println!(
        "({r},{})-cover   = {} clusters, max cover degree {}, max radius {}",
        2 * r,
        cov.clusters.len(),
        cov.max_degree(),
        cov.max_radius(g),
    );
    let mut rng = StdRng::seed_from_u64(1);
    let game = foc_covers::splitter::estimate_game_length(g, 1, 3, &mut rng, 256);
    println!(
        "splitter λ̂(1)  = {} rounds ({})",
        game.rounds,
        if game.splitter_won {
            "Splitter wins"
        } else {
            "cap reached — dense?"
        }
    );
    Ok(())
}

fn cmd_gen(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [class] = pos.as_slice() else {
        return Err(CliError::usage("gen needs a class name"));
    };
    let n: u32 = flag_value(args, "--n")
        .ok_or_else(|| CliError::usage("gen needs --n"))?
        .parse()
        .map_err(|_| CliError::usage("--n needs an integer"))?;
    let seed: u64 = flag_value(args, "--seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| CliError::usage("--seed needs an integer"))?;
    let mut rng = StdRng::seed_from_u64(seed);
    let s = match class.as_str() {
        "tree" => generators::random_tree(n, &mut rng),
        "grid" => {
            let side = (n as f64).sqrt().round().max(1.0) as u32;
            generators::grid(side, side)
        }
        "path" => generators::path(n),
        "cycle" => generators::cycle(n.max(3)),
        "star" => generators::star(n),
        "clique" => generators::clique(n),
        "deg3" => generators::bounded_degree(n, 3, 3 * n as usize, &mut rng),
        "gnm" => generators::gnm(n, 2 * n as usize, &mut rng),
        other => return Err(CliError::usage(format!("unknown class {other:?}"))),
    };
    let text = write_structure(&s);
    match flag_value(args, "-o") {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} ({} elements, size {})", path, s.order(), s.size());
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// `foc fuzz`: the cross-engine differential harness. Fuzzes when given
/// a budget/iteration count; replays the persisted corpus with
/// `--replay`. Stdout is deterministic for a fixed seed; any divergence
/// exits 1.
fn cmd_fuzz(args: &[String]) -> CliResult {
    let seed: u64 = flag_value(args, "--seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| CliError::usage("--seed needs an integer"))?;
    let iters: Option<u64> = match flag_value(args, "--iters") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliError::usage("--iters needs an integer"))?,
        ),
        None => None,
    };
    let budget_secs: Option<u64> = match flag_value(args, "--budget") {
        Some(v) => Some(
            v.strip_suffix('s')
                .unwrap_or(v)
                .parse()
                .map_err(|_| CliError::usage(format!("invalid --budget {v:?} (try 30s)")))?,
        ),
        None => None,
    };
    let mut gen = foc_diff::GenConfig::default();
    if let Some(v) = flag_value(args, "--max-order") {
        gen.max_order = v
            .parse()
            .map_err(|_| CliError::usage("--max-order needs an integer"))?;
    }
    if has_flag(args, "--crash") {
        let mut cfg = foc_diff::CrashConfig {
            seed,
            gen,
            ..foc_diff::CrashConfig::default()
        };
        if let Some(i) = iters {
            cfg.iters = i;
        }
        if let Some(v) = flag_value(args, "--steps") {
            cfg.steps = v
                .parse()
                .map_err(|_| CliError::usage("--steps needs an integer"))?;
        }
        if let Some(v) = flag_value(args, "--checkpoint-every") {
            cfg.checkpoint_every = v
                .parse()
                .map_err(|_| CliError::usage("--checkpoint-every needs an integer"))?;
        }
        let metrics = foc_obs::Metrics::new();
        let mut stdout = std::io::stdout().lock();
        let report = foc_diff::fuzz_crash(&cfg, &metrics, &mut stdout);
        drop(stdout);
        if let Some(path) = flag_value(args, "--metrics-json") {
            let json = session_json("fuzz-crash", &[], &metrics.snapshot(), &[]);
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        return if report.clean() {
            Ok(())
        } else {
            Err(CliError::Runtime(format!(
                "{} crash-recovery violation(s) across {} kill point(s)",
                report.violations.len(),
                report.kill_points
            )))
        };
    }
    if has_flag(args, "--updates") {
        let mut cfg = foc_diff::UpdatesConfig {
            seed,
            gen,
            ..foc_diff::UpdatesConfig::default()
        };
        if let Some(i) = iters {
            cfg.iters = i;
        }
        if let Some(v) = flag_value(args, "--steps") {
            cfg.steps = v
                .parse()
                .map_err(|_| CliError::usage("--steps needs an integer"))?;
        }
        let metrics = foc_obs::Metrics::new();
        let mut stdout = std::io::stdout().lock();
        let report = foc_diff::fuzz_updates(&cfg, &metrics, &mut stdout);
        drop(stdout);
        if let Some(path) = flag_value(args, "--metrics-json") {
            let json = session_json("fuzz-updates", &[], &metrics.snapshot(), &[]);
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        return if report.clean() {
            Ok(())
        } else {
            Err(CliError::Runtime(format!(
                "{} update divergence(s) across {} interleaving(s)",
                report.divergences.len(),
                report.cases
            )))
        };
    }
    // Test-only hook (deliberately undocumented in the usage text): flip
    // the local engine's sentence verdicts on structures of order >= K,
    // to validate the catch -> shrink -> replay pipeline end to end.
    let mut injection = foc_diff::BugInjection::default();
    if let Some(v) = flag_value(args, "--inject-flip-local") {
        injection.flip_local_sentence_min_order = Some(
            v.parse()
                .map_err(|_| CliError::usage("--inject-flip-local needs an integer"))?,
        );
    }
    // Per-case deadline: `0` disables it; the default is generous enough
    // that healthy runs keep byte-identical logs.
    let case_deadline = match flag_value(args, "--case-timeout") {
        Some(v) => {
            let ms: u64 = v.parse().map_err(|_| {
                CliError::usage(format!("invalid --case-timeout {v:?} (milliseconds)"))
            })?;
            (ms > 0).then(|| Duration::from_millis(ms))
        }
        None => Some(foc_diff::DEFAULT_CASE_DEADLINE),
    };
    let cfg = foc_diff::FuzzConfig {
        seed,
        iters,
        budget_secs,
        gen,
        corpus_dir: flag_value(args, "--corpus").map(std::path::PathBuf::from),
        injection,
        metamorphic: !has_flag(args, "--no-meta"),
        anytime: !has_flag(args, "--no-anytime"),
        shrink: !has_flag(args, "--no-shrink"),
        case_deadline,
    };
    let metrics = foc_obs::Metrics::new();
    let mut stdout = std::io::stdout().lock();
    let report = if has_flag(args, "--replay") {
        if cfg.corpus_dir.is_none() {
            return Err(CliError::usage("--replay needs --corpus <dir>"));
        }
        foc_diff::replay(&cfg, &metrics, &mut stdout)
    } else {
        foc_diff::fuzz(&cfg, &metrics, &mut stdout)
    };
    drop(stdout);
    if let Some(path) = flag_value(args, "--metrics-json") {
        let json = session_json("fuzz", &[], &metrics.snapshot(), &[]);
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if report.clean() {
        Ok(())
    } else {
        Err(CliError::Runtime(format!(
            "{} divergence(s) across {} case(s)",
            report.found.len(),
            report.cases
        )))
    }
}

/// `foc serve`: load the structure once, serve JSON-lines queries over
/// TCP until stdin closes (or sends a `drain` line), then drain
/// gracefully. Exit code 3 when the drain deadline passed and in-flight
/// requests had to be interrupted.
fn cmd_serve(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err(CliError::usage("serve needs exactly one structure file"));
    };
    let structure = load(path)?;

    let mut config = foc_serve::ServerConfig::default();
    if let Some(v) = flag_value(args, "--port") {
        let port: u16 = v
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --port {v:?}")))?;
        config.addr = format!("127.0.0.1:{port}");
    }
    let usize_flag = |flag: &str, default: usize| -> CliResult<usize> {
        match flag_value(args, flag) {
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("invalid {flag} {v:?}"))),
            None => Ok(default),
        }
    };
    let u64_flag = |flag: &str| -> CliResult<Option<u64>> {
        match flag_value(args, flag) {
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::usage(format!("invalid {flag} {v:?}"))),
            None => Ok(None),
        }
    };
    config.max_inflight = usize_flag("--max-inflight", config.max_inflight)?;
    config.queue = usize_flag("--queue", config.queue)?;
    config.threads = usize_flag("--threads", config.threads)?;
    config.mem_limit = u64_flag("--mem-limit")?;
    config.max_fuel = u64_flag("--max-fuel")?;
    if let Some(ms) = u64_flag("--drain-timeout")? {
        config.drain_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = u64_flag("--max-timeout")? {
        config.max_timeout = Duration::from_millis(ms);
    }
    config.engine = match flag_value(args, "--engine").unwrap_or("local") {
        "naive" => EngineKind::Naive,
        "local" => EngineKind::Local,
        "cover" => EngineKind::Cover,
        other => return Err(CliError::usage(format!("unknown engine {other:?}"))),
    };
    config.telemetry_addr = flag_value(args, "--telemetry-addr").map(str::to_string);
    config.trace_path = flag_value(args, "--trace-log").map(std::path::PathBuf::from);
    config.postmortem_dir = flag_value(args, "--postmortem-dir").map(std::path::PathBuf::from);
    config.tracing = !has_flag(args, "--no-tracing");
    if let Some(n) = u64_flag("--trace-sample")? {
        config.trace_sample = n;
    }
    if let Some(s) = u64_flag("--trace-seed")? {
        config.trace_seed = s;
    }
    if let Some(ms) = u64_flag("--slow-query")? {
        config.slow_query = Some(Duration::from_millis(ms));
    }
    config.wal_dir = flag_value(args, "--wal-dir").map(std::path::PathBuf::from);
    if let Some(v) = flag_value(args, "--fsync") {
        config.fsync = v.parse::<foc_wal::FsyncPolicy>().map_err(CliError::usage)?;
    }
    config.max_frame_bytes = usize_flag("--max-frame-bytes", config.max_frame_bytes)?;
    if let Some(b) = u64_flag("--wal-checkpoint-bytes")? {
        config.wal_checkpoint_bytes = b;
    }

    let wal_on = config.wal_dir.is_some();
    let handle = foc_serve::start(structure, config)
        .map_err(|e| CliError::Runtime(format!("cannot bind: {e}")))?;
    println!("listening on {}", handle.addr());
    if let Some(taddr) = handle.telemetry_addr() {
        println!("telemetry on {taddr}");
    }
    if wal_on {
        // Supervisors restarting after a crash read this line to learn
        // how much log tail the checkpoint left to replay.
        println!(
            "wal recovered ({} record(s) replayed)",
            handle
                .metrics()
                .counter(foc_obs::names::RECOVERY_REPLAYED)
                .get()
        );
    }
    // `println!` buffers per line, but be explicit: supervisors wait on
    // this line to learn the ephemeral port.
    std::io::stdout().flush().ok();

    // Block until something asks for the graceful drain: stdin EOF
    // (supervisor closed the pipe), an explicit "drain" line, SIGINT, or
    // SIGTERM. Stdin is read on a helper thread because a blocking
    // `read_line` cannot observe the signal flag (handlers are installed
    // with restart semantics on most platforms); the main thread polls
    // both the channel and the flag. The helper stays parked in its read
    // after a signal-triggered exit, which is fine — the process is
    // about to finish the drain and exit.
    signals::install();
    let (tx, rx) = std::sync::mpsc::channel::<Option<String>>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match stdin.lock().read_line(&mut line) {
                Ok(0) => {
                    let _ = tx.send(None);
                    break;
                }
                Ok(_) => {
                    if tx.send(Some(line.trim().to_string())).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    eprintln!("foc: stdin error, draining: {e}");
                    let _ = tx.send(None);
                    break;
                }
            }
        }
    });
    loop {
        if signals::triggered() {
            eprintln!("foc: signal received, draining");
            break;
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(None) => break,
            Ok(Some(l)) if l == "drain" => break,
            Ok(Some(_)) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    let report = handle.drain();
    let snap = &report.final_metrics;
    eprintln!(
        "drained in {:?}: {} request(s) served, {} shed, {} interrupted by the drain deadline, {} connection(s) joined",
        report.drain,
        snap.counter(foc_obs::names::SERVE_REQUESTS),
        snap.counter(foc_obs::names::SERVE_SHED),
        report.interrupted,
        report.connections_joined,
    );
    if let Some(path) = flag_value(args, "--metrics-json") {
        let json = session_json("serve", &[], snap, &[]);
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if report.interrupted > 0 {
        return Err(CliError::Interrupted(foc_core::Interrupt {
            reason: foc_core::TripReason::Cancelled,
            phase: foc_core::Phase::Engine,
            fuel_spent: 0,
        }));
    }
    Ok(())
}

/// SIGINT/SIGTERM handling without a signal crate: a handler that only
/// sets an atomic flag, installed through the C `signal` entry point
/// (async-signal-safe — an atomic store is on the safe list).
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type Handler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: Handler) -> isize;
    }

    extern "C" fn on_signal(_sig: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    /// Routes SIGINT and SIGTERM to the drain flag.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Whether a drain-triggering signal has arrived.
    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }
}

/// On non-unix targets signals never trigger; stdin still drives drain.
#[cfg(not(unix))]
mod signals {
    pub fn install() {}

    pub fn triggered() -> bool {
        false
    }
}

/// `foc recover`: recover a WAL directory offline — verify the
/// checkpoint, truncate any torn log tail, replay the surviving records
/// (each verified against its recorded fingerprint), and report the
/// recovered state. `--structure` seeds a directory that has no
/// checkpoint yet; `-o` writes the recovered structure out.
fn cmd_recover(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [dir] = pos.as_slice() else {
        return Err(CliError::usage("recover needs exactly one <wal-dir>"));
    };
    let base = match flag_value(args, "--structure") {
        Some(p) => Some(load(p)?),
        None => None,
    };
    let store = foc_wal::DirStore::open(std::path::Path::new(dir.as_str()))
        .map_err(|e| format!("cannot open {dir}: {e}"))?;
    let (_, rec) = foc_wal::Wal::recover(store, foc_wal::FsyncPolicy::Always, base)
        .map_err(|e| format!("{dir}: {e}"))?;
    println!(
        "recovered epoch {} fingerprint {:016x} ({} replayed, {} skipped, {} torn byte(s) truncated, checkpoint at epoch {})",
        rec.delta.epoch(),
        rec.fingerprint,
        rec.replayed,
        rec.skipped,
        rec.truncated_bytes,
        rec.checkpoint_epoch,
    );
    if let Some(out) = flag_value(args, "-o") {
        std::fs::write(out, write_structure(rec.delta.current()))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

/// `foc wal inspect`: read-only scan of a WAL directory — checkpoint
/// header, per-record summaries, and torn-tail accounting. Unlike
/// `foc recover` this never truncates anything.
fn cmd_wal(args: &[String]) -> CliResult {
    let Some(sub) = args.first() else {
        return Err(CliError::usage("wal needs a subcommand (inspect)"));
    };
    if sub != "inspect" {
        return Err(CliError::usage(format!("unknown wal subcommand {sub:?}")));
    }
    let rest = &args[1..];
    let pos = positional(rest);
    let [dir] = pos.as_slice() else {
        return Err(CliError::usage("wal inspect needs exactly one <wal-dir>"));
    };
    let mut store = foc_wal::DirStore::open(std::path::Path::new(dir.as_str()))
        .map_err(|e| format!("cannot open {dir}: {e}"))?;
    let insp = foc_wal::inspect(&mut store).map_err(|e| format!("{dir}: {e}"))?;
    match insp.checkpoint {
        Some((epoch, fp, order)) => {
            println!("checkpoint epoch {epoch} fingerprint {fp:016x} universe {order}")
        }
        None => println!("checkpoint none"),
    }
    println!(
        "log {} record(s), {} valid byte(s)",
        insp.records.len(),
        insp.valid_bytes
    );
    for (epoch, fp, ops) in &insp.records {
        println!("  record epoch {epoch} fingerprint {fp:016x} {ops} op(s)");
    }
    if insp.torn_bytes > 0 {
        println!(
            "torn tail {} byte(s): {}",
            insp.torn_bytes,
            insp.torn_reason.as_deref().unwrap_or("unknown cause")
        );
    }
    Ok(())
}

/// One hand-rolled HTTP/1.1 GET against a serve telemetry listener.
/// Returns the response body on a 200; anything else is an error with
/// the status line in the message.
fn http_get(addr: &str, path: &str) -> CliResult<String> {
    use std::io::Read;
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError::Runtime(format!("cannot connect to {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .map_err(|e| format!("socket setup: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: foc\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("cannot send request: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("cannot read response: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response from {addr}"))?;
    let status_line = head.lines().next().unwrap_or("");
    if status_line.split_whitespace().nth(1) != Some("200") {
        return Err(CliError::Runtime(format!(
            "{addr}{path} answered {status_line:?}"
        )));
    }
    Ok(body.to_string())
}

/// Pulls one `"key":<number-or-bool>` field out of a one-line JSON
/// object by string scan. `/stats` carries one fractional field
/// (`cache_hit_rate`), which the strict protocol parser rejects by
/// design, so `foc top` reads fields positionally instead of parsing.
fn stats_field<'a>(stats: &'a str, key: &str) -> &'a str {
    let needle = format!("\"{key}\":");
    let Some(at) = stats.find(&needle) else {
        return "?";
    };
    let rest = &stats[at + needle.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim()
}

/// A `/stats` body must be one complete one-line JSON object. Anything
/// else — a truncated read, an empty body, an HTML error page — gets a
/// clear one-line diagnostic and a nonzero exit instead of a table of
/// `?` placeholders.
fn validate_stats(addr: &str, body: &str) -> CliResult<()> {
    let t = body.trim();
    if t.starts_with('{') && t.ends_with('}') && t.contains("\"uptime_micros\":") {
        return Ok(());
    }
    let preview: String = t.chars().take(60).collect();
    Err(CliError::Runtime(format!(
        "truncated or malformed /stats response from {addr} ({} bytes): {preview:?}",
        t.len()
    )))
}

/// `foc top`: poll a serve telemetry listener's `/stats` endpoint and
/// print live server state — one compact line per poll, or the full
/// field table once with `--once`.
fn cmd_top(args: &[String]) -> CliResult {
    let pos = positional(args);
    let [addr] = pos.as_slice() else {
        return Err(CliError::usage(
            "top needs exactly one <host:port> (the serve --telemetry-addr)",
        ));
    };
    let interval = match flag_value(args, "--interval") {
        Some(v) => Duration::from_millis(
            v.parse()
                .map_err(|_| CliError::usage(format!("invalid --interval {v:?}")))?,
        ),
        None => Duration::from_millis(1000),
    };
    let once = has_flag(args, "--once");

    loop {
        let stats = http_get(addr, "/stats")?;
        validate_stats(addr, &stats)?;
        if once {
            // Full table: every field of the one-line JSON, one per row.
            for field in [
                "uptime_micros",
                "inflight",
                "queue_depth",
                "draining",
                "pressure",
                "epoch",
                "requests",
                "shed",
                "errors",
                "interrupted",
                "slow_queries",
                "traces_kept",
                "postmortems",
                "cache_entries",
                "cache_bytes",
                "cache_hit_rate",
                "resident_bytes",
                "peak_resident_bytes",
                "wal_enabled",
                "wal_readonly",
                "wal_last_sync_age_micros",
                "wal_bytes_since_checkpoint",
                "wal_appends",
                "wal_checkpoints",
                "frames_oversized",
                "recovery_replayed",
            ] {
                println!("{field:<22} {}", stats_field(&stats, field));
            }
            return Ok(());
        }
        let uptime_s = stats_field(&stats, "uptime_micros")
            .parse::<u64>()
            .unwrap_or(0) as f64
            / 1e6;
        // WAL health (satellite of the durability work): last-fsync age
        // and log growth since the last checkpoint, only when a WAL is
        // configured on the server.
        let wal = if stats_field(&stats, "wal_enabled") == "true" {
            format!(
                "  wal age {}us log {}B",
                stats_field(&stats, "wal_last_sync_age_micros"),
                stats_field(&stats, "wal_bytes_since_checkpoint"),
            )
        } else {
            String::new()
        };
        println!(
            "up {uptime_s:7.1}s  inflight {:>3}  queue {:>3}  req {:>6}  shed {:>4}  err {:>4}  slow {:>4}  cache {} ({} B, hit {})  pressure {}{wal}{}{}",
            stats_field(&stats, "inflight"),
            stats_field(&stats, "queue_depth"),
            stats_field(&stats, "requests"),
            stats_field(&stats, "shed"),
            stats_field(&stats, "errors"),
            stats_field(&stats, "slow_queries"),
            stats_field(&stats, "cache_entries"),
            stats_field(&stats, "cache_bytes"),
            stats_field(&stats, "cache_hit_rate"),
            stats_field(&stats, "pressure"),
            if stats_field(&stats, "wal_readonly") == "true" {
                "  WAL-READONLY"
            } else {
                ""
            },
            if stats_field(&stats, "draining") == "true" {
                "  DRAINING"
            } else {
                ""
            },
        );
        std::io::stdout().flush().ok();
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let args = argv(&["check", "db.foc", "true", "--engine", "naive"]);
        assert_eq!(flag_value(&args, "--engine"), Some("naive"));
        assert_eq!(flag_value(&args, "--vars"), None);
    }

    #[test]
    fn positionals_skip_flag_values() {
        let args = argv(&["db.foc", "--engine", "naive", "E(x,y)", "--vars", "x,y"]);
        let pos = positional(&args);
        assert_eq!(pos, vec!["db.foc", "E(x,y)"]);
    }

    #[test]
    fn top_boolean_flags_do_not_eat_positionals() {
        let args = argv(&["127.0.0.1:9100", "--once"]);
        assert_eq!(positional(&args), vec!["127.0.0.1:9100"]);
        let args = argv(&["db.foc", "--no-tracing", "--queue", "4"]);
        assert_eq!(positional(&args), vec!["db.foc"]);
    }

    #[test]
    fn stats_fields_are_extracted_by_scan() {
        let stats = "{\"uptime_micros\":1500000,\"inflight\":3,\"draining\":false,\"cache_hit_rate\":0.7500,\"peak_resident_bytes\":42}";
        assert_eq!(stats_field(stats, "inflight"), "3");
        assert_eq!(stats_field(stats, "draining"), "false");
        assert_eq!(stats_field(stats, "cache_hit_rate"), "0.7500");
        assert_eq!(stats_field(stats, "peak_resident_bytes"), "42");
        assert_eq!(stats_field(stats, "missing"), "?");
    }

    #[test]
    fn engine_selection() {
        assert_eq!(
            engine_with_sink(&argv(&["--engine", "cover"]), None)
                .unwrap()
                .kind(),
            EngineKind::Cover
        );
        assert_eq!(
            engine_with_sink(&argv(&[]), None).unwrap().kind(),
            EngineKind::Local
        );
        assert!(engine_with_sink(&argv(&["--engine", "warp"]), None).is_err());
    }

    #[test]
    fn boolean_flags_do_not_eat_positionals() {
        let args = argv(&["db.foc", "--profile", "E(x,y)", "--trace"]);
        let pos = positional(&args);
        assert_eq!(pos, vec!["db.foc", "E(x,y)"]);
        assert!(has_flag(&args, "--profile"));
        assert!(has_flag(&args, "--trace"));
        assert!(!has_flag(&args, "--metrics-json"));
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&argv(&[])).is_err());
    }

    #[test]
    fn nonexistent_structure_file_is_a_runtime_error() {
        for cmd in ["check", "eval"] {
            let query = if cmd == "check" { "true" } else { "1 + 1" };
            let r = run(&argv(&[cmd, "/nonexistent/no-such-file.foc", query]));
            match r {
                Err(CliError::Runtime(msg)) => {
                    assert!(
                        msg.contains("no-such-file.foc"),
                        "diagnostic names the file: {msg}"
                    );
                    assert!(!msg.contains('\n'), "one-line diagnostic: {msg:?}");
                }
                other => panic!("expected a runtime error, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_structure_file_is_a_runtime_error() {
        let dir = std::env::temp_dir().join(format!("foc-cli-malformed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.foc");
        std::fs::write(&path, "this is not ; a structure {{{").unwrap();
        let pstr = path.to_str().unwrap().to_string();
        for cmd in ["check", "eval"] {
            let query = if cmd == "check" { "true" } else { "1 + 1" };
            let r = run(&argv(&[cmd, &pstr, query]));
            match r {
                Err(CliError::Runtime(msg)) => {
                    assert!(msg.contains("bad.foc"), "diagnostic names the file: {msg}");
                    assert!(!msg.contains('\n'), "one-line diagnostic: {msg:?}");
                }
                other => panic!("expected a runtime error, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_arguments_are_usage_errors() {
        assert!(matches!(run(&argv(&["check"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&argv(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            engine_with_sink(&argv(&["--timeout", "abc"]), None),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            engine_with_sink(&argv(&["--fuel", "-3"]), None),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn budget_flags_reach_the_engine() {
        let ev = engine_with_sink(&argv(&["--timeout", "250", "--fuel", "99"]), None).unwrap();
        assert_eq!(ev.budget().deadline, Some(Duration::from_millis(250)));
        assert_eq!(ev.budget().fuel, Some(99));
        assert_eq!(ev.config().degrade, DegradePolicy::FallThrough);
        let strict = engine_with_sink(&argv(&["--strict"]), None).unwrap();
        assert_eq!(strict.config().degrade, DegradePolicy::Strict);
    }

    #[test]
    fn exhausted_fuel_surfaces_as_interrupted() {
        let dir = std::env::temp_dir().join(format!("foc-cli-fuel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.foc");
        let pstr = path.to_str().unwrap().to_string();
        run(&argv(&["gen", "clique", "--n", "24", "-o", &pstr])).unwrap();
        // The count must enumerate every assignment, so tiny fuel trips.
        let r = run(&argv(&[
            "check",
            &pstr,
            "#(x,y,z). (E(x,y) & E(y,z) & E(x,z)) >= 100000",
            "--engine",
            "naive",
            "--fuel",
            "5",
        ]));
        assert!(matches!(r, Err(CliError::Interrupted(_))), "got {r:?}");
        // `--strict` with a boolean-flag position must not eat positionals.
        let r = run(&argv(&[
            "check", &pstr, "--strict", "true", "--fuel", "1000000",
        ]));
        assert!(r.is_ok(), "got {r:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fuzz_clean_run_and_usage_errors() {
        assert!(run(&argv(&[
            "fuzz",
            "--seed",
            "1",
            "--iters",
            "15",
            "--no-meta"
        ]))
        .is_ok());
        assert!(matches!(
            run(&argv(&["fuzz", "--replay"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv(&["fuzz", "--budget", "abc"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn fuzz_injected_bug_diverges_then_replays_clean_once_fixed() {
        let dir = std::env::temp_dir().join(format!("foc-cli-fuzz-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let corpus = dir.to_str().unwrap().to_string();
        // The injected flip must be caught and exit as a runtime error.
        let r = run(&argv(&[
            "fuzz",
            "--seed",
            "5",
            "--iters",
            "20",
            "--no-meta",
            "--corpus",
            &corpus,
            "--inject-flip-local",
            "3",
        ]));
        assert!(matches!(r, Err(CliError::Runtime(_))), "got {r:?}");
        // Replaying the persisted corpus with the bug still present fails…
        let r = run(&argv(&[
            "fuzz",
            "--replay",
            "--corpus",
            &corpus,
            "--no-meta",
            "--inject-flip-local",
            "3",
        ]));
        assert!(matches!(r, Err(CliError::Runtime(_))), "got {r:?}");
        // …and passes once the bug is gone.
        let r = run(&argv(&[
            "fuzz",
            "--replay",
            "--corpus",
            &corpus,
            "--no-meta",
        ]));
        assert!(r.is_ok(), "got {r:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn anytime_banks_an_answer_where_plain_interrupts() {
        let dir = std::env::temp_dir().join(format!("foc-cli-anytime-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.foc");
        let pstr = path.to_str().unwrap().to_string();
        run(&argv(&["gen", "grid", "--n", "144", "-o", &pstr])).unwrap();
        let query = "#(x,y). !(dist(x,y) <= 2)";
        // The plain run trips its fuel budget and exits 3…
        let r = run(&argv(&[
            "eval", &pstr, query, "--engine", "naive", "--fuel", "2000",
        ]));
        assert!(matches!(r, Err(CliError::Interrupted(_))), "got {r:?}");
        // …the same budget under --anytime banks a tagged answer (exit 0).
        let r = run(&argv(&[
            "eval",
            &pstr,
            query,
            "--engine",
            "naive",
            "--fuel",
            "2000",
            "--anytime",
        ]));
        assert!(r.is_ok(), "got {r:?}");
        // `count` takes the same path through the deepening driver.
        let r = run(&argv(&[
            "count",
            &pstr,
            "!(dist(x,y) <= 2)",
            "--vars",
            "x,y",
            "--engine",
            "naive",
            "--fuel",
            "2000",
            "--anytime",
            "--profile",
        ]));
        assert!(r.is_ok(), "got {r:?}");
        // `explain --anytime` renders the pass table and also exits 0.
        let r = run(&argv(&[
            "explain",
            &pstr,
            query,
            "--engine",
            "naive",
            "--fuel",
            "2000",
            "--anytime",
        ]));
        assert!(r.is_ok(), "got {r:?}");
        // An unbounded anytime run is exact and exits 0 too.
        let r = run(&argv(&[
            "check",
            &pstr,
            "exists x. #(y). E(x,y) >= 4",
            "--anytime",
        ]));
        assert!(r.is_ok(), "got {r:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn approx_flags_estimate_counts_and_reject_misuse() {
        let dir = std::env::temp_dir().join(format!("foc-cli-approx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("k.foc");
        let pstr = path.to_str().unwrap().to_string();
        run(&argv(&["gen", "clique", "--n", "40", "-o", &pstr])).unwrap();
        // The estimator answers eval and count; --epsilon alone implies it.
        let r = run(&argv(&["eval", &pstr, "#(x,y). E(x,y)", "--approx"]));
        assert!(r.is_ok(), "got {r:?}");
        let r = run(&argv(&[
            "count",
            &pstr,
            "E(x,y)",
            "--vars",
            "x,y",
            "--epsilon",
            "0.05",
        ]));
        assert!(r.is_ok(), "got {r:?}");
        // Estimator knobs are validated up front…
        let r = run(&argv(&["eval", &pstr, "#(x). x = x", "--epsilon", "7"]));
        assert!(matches!(r, Err(CliError::Usage(_))), "got {r:?}");
        // …a sentence has nothing to estimate without the ladder…
        let r = run(&argv(&["check", &pstr, "exists x. E(x,x)", "--approx"]));
        assert!(matches!(r, Err(CliError::Usage(_))), "got {r:?}");
        // …but the anytime ladder accepts the knob everywhere.
        let r = run(&argv(&[
            "check",
            &pstr,
            "exists x. E(x,x)",
            "--approx",
            "--anytime",
        ]));
        assert!(r.is_ok(), "got {r:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn top_refused_connection_is_a_runtime_error() {
        // Bind-then-drop guarantees a port with nothing listening.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let r = run(&argv(&["top", &addr, "--once"]));
        match r {
            Err(CliError::Runtime(msg)) => {
                assert!(msg.contains("cannot connect"), "names the failure: {msg}");
                assert!(msg.contains(&addr), "names the address: {msg}");
            }
            other => panic!("expected a runtime error, got {other:?}"),
        }
    }

    #[test]
    fn top_truncated_stats_is_a_runtime_error() {
        use std::io::Read as _;
        // A fake telemetry listener that answers 200 with a cut-off body.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            // Read until the request head is complete before replying —
            // answering (and closing) mid-request races the client's
            // write into an EPIPE instead of the truncated-body error.
            let mut head = Vec::new();
            let mut buf = [0u8; 512];
            while !head.windows(4).any(|w| w == b"\r\n\r\n") {
                match conn.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => head.extend_from_slice(&buf[..n]),
                }
            }
            conn.write_all(b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\n{\"upti")
                .unwrap();
        });
        let r = run(&argv(&["top", &addr, "--once"]));
        server.join().unwrap();
        match r {
            Err(CliError::Runtime(msg)) => {
                assert!(
                    msg.contains("truncated or malformed"),
                    "names the failure: {msg}"
                );
                assert!(!msg.contains('\n'), "one-line diagnostic: {msg:?}");
            }
            other => panic!("expected a runtime error, got {other:?}"),
        }
    }

    #[test]
    fn stats_validation_accepts_real_and_rejects_junk() {
        let good = "{\"uptime_micros\":1500000,\"inflight\":3,\"cache_hit_rate\":0.7500}";
        assert!(validate_stats("x", good).is_ok());
        for bad in ["", "{\"upti", "<html>502</html>", "{\"inflight\":3}"] {
            assert!(validate_stats("x", bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn end_to_end_in_tempdir() {
        let dir = std::env::temp_dir().join(format!("foc-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.foc");
        let pstr = path.to_str().unwrap().to_string();
        run(&argv(&["gen", "grid", "--n", "16", "-o", &pstr])).unwrap();
        run(&argv(&["stats", &pstr])).unwrap();
        run(&argv(&["check", &pstr, "exists x. #(y). E(x,y) >= 4"])).unwrap();
        run(&argv(&["eval", &pstr, "#(x,y). E(x,y)"])).unwrap();
        run(&argv(&["count", &pstr, "E(x,y)", "--vars", "x,y"])).unwrap();
        assert!(run(&argv(&["check", &pstr, "E(x,y)"])).is_err()); // free vars
        assert!(run(&argv(&["eval", &pstr, "#(y). E(x,y)"])).is_err()); // free vars
        std::fs::remove_dir_all(&dir).ok();
    }
}
