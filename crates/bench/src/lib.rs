//! # foc-bench — experiment harness and benchmarks
//!
//! The paper is a theory paper with no empirical tables; its "evaluation"
//! is a set of theorems. This crate reproduces each theorem as a
//! measurable experiment (see DESIGN.md §4 for the index):
//!
//! | Id | Claim |
//! |----|-------|
//! | E1 | Theorem 4.1 — FO on graphs ≼ FOC({P=}) on trees |
//! | E2 | Theorem 4.3 — … on strings |
//! | E3 | Theorem 5.5 — model checking is fp-almost-linear on nowhere dense classes |
//! | E4 | Corollary 5.6 — so is counting |
//! | E5 | Lemma 6.4 / Theorem 6.10 — the cl-decomposition |
//! | E6 | Theorem 8.1 — sparse neighbourhood covers |
//! | E7 | Example 5.3 — SQL COUNT workloads |
//! | E8 | Example 5.4 — triangle/colour cardinalities |
//! | E9 | Section 8 — the splitter game |
//! | E10 | Lemmas 7.8/7.9 — the Removal Lemma |
//! | E11 | ablations of this implementation's design choices |
//! | E12 | parallel cluster evaluation — thread sweep + BENCH_parallel.json |
//! | E13 | service mode under load — loopback stress + BENCH_serve.json; E13b telemetry on/off overhead + BENCH_telemetry.json |
//! | E14 | live updates — delta maintenance vs rebuild + BENCH_updates.json |
//! | E15 | anytime evaluation — quality vs budget curve + BENCH_anytime.json |
//! | E16 | approximate counting — speedup vs epsilon + BENCH_approx.json |
//! | E17 | WAL durability — durable-ack overhead and recovery time + BENCH_wal.json |
//!
//! Run them with `cargo run --release -p foc-bench --bin experiments -- all`
//! (or a subset, e.g. `e3 e6 --quick`).

#![warn(missing_docs)]

pub mod exp_ablation;
pub mod exp_anytime;
pub mod exp_approx;
pub mod exp_covers;
pub mod exp_decompose;
pub mod exp_hardness;
pub mod exp_parallel;
pub mod exp_removal;
pub mod exp_scaling;
pub mod exp_serve;
pub mod exp_sql;
pub mod exp_updates;
pub mod exp_wal;
pub mod table;

use table::Table;

/// Runs one experiment by id (`"e1"` … `"e10"`).
pub fn run_experiment(id: &str, quick: bool) -> Option<Vec<Table>> {
    match id {
        "e1" => Some(exp_hardness::e1(quick)),
        "e2" => Some(exp_hardness::e2(quick)),
        "e3" => Some(exp_scaling::e3(quick)),
        "e4" => Some(exp_scaling::e4(quick)),
        "e5" => Some(exp_decompose::e5(quick)),
        "e6" => Some(exp_covers::e6(quick)),
        "e7" => Some(exp_sql::e7(quick)),
        "e8" => Some(exp_sql::e8(quick)),
        "e9" => Some(exp_covers::e9(quick)),
        "e10" => Some(exp_removal::e10(quick)),
        "e11" => Some(exp_ablation::e11(quick)),
        "e12" => Some(exp_parallel::e12(quick)),
        "e13" => Some(exp_serve::e13(quick)),
        "e14" => Some(exp_updates::e14(quick)),
        "e15" => Some(exp_anytime::e15(quick)),
        "e16" => Some(exp_approx::e16(quick)),
        "e17" => Some(exp_wal::e17(quick)),
        _ => None,
    }
}

/// All experiment ids in order.
pub const ALL_EXPERIMENTS: [&str; 17] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17",
];
