//! E15 — anytime evaluation: answer quality versus budget.
//!
//! The deepening driver promises *graceful* degradation: a tighter
//! budget may stop at a weaker rung of the pass ladder, but the banked
//! answer it returns is sound for its tag, and giving the driver more
//! budget never makes the answer worse. This experiment measures that
//! curve on a locality-heavy counting query under the cover engine
//! (the full sample → local → exact ladder): one run per fuel budget
//! in an increasing sweep, each recording the confidence tag, the
//! banked value, and quality = banked / exact ∈ [0, 1].
//!
//! Budgets are fuel-only, so every cell is deterministic — the sweep is
//! a function of the seed structure alone, not of machine speed. The
//! experiment asserts the acceptance property end to end: quality is
//! monotonically non-decreasing as the budget grows, and the unbounded
//! run is exact.
//!
//! Besides the markdown table, the experiment writes
//! `BENCH_anytime.json` to the current directory: one record per
//! budget plus a summary with the exact value and the first budget
//! that reached the exact rung.

use std::fmt::Write as _;
use std::time::Instant;

use foc_core::{AnytimeConfig, Confidence, EngineKind, Error, Evaluator};
use foc_logic::build::{cnt, dist_le, not, v};
use foc_structures::gen::grid;

use crate::table::Table;

struct BudgetCell {
    fuel: Option<u64>,
    confidence: String,
    value: Option<i64>,
    quality: f64,
    passes: String,
    micros: u64,
    fuel_spent: u64,
}

fn fuel_label(fuel: Option<u64>) -> String {
    match fuel {
        Some(f) => f.to_string(),
        None => "unbounded".into(),
    }
}

fn emit_json(cells: &[BudgetCell], order: u32, exact: i64, quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"experiment\": \"E15 anytime evaluation: quality vs budget\","
    );
    let _ = writeln!(out, "  \"engine\": \"cover\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"order\": {order},");
    let _ = writeln!(out, "  \"query\": \"#(x,y). not dist<=2(x,y)\",");
    let _ = writeln!(
        out,
        "  \"note\": \"fuel-only budgets keep every cell deterministic; quality = banked value / exact value, 0 when no pass banked an answer\","
    );
    let _ = writeln!(out, "  \"budgets\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(
            out,
            "      \"fuel\": {},",
            c.fuel.map_or("null".into(), |f| f.to_string())
        );
        let _ = writeln!(out, "      \"confidence\": \"{}\",", c.confidence);
        let _ = writeln!(
            out,
            "      \"value\": {},",
            c.value.map_or("null".into(), |x| x.to_string())
        );
        let _ = writeln!(out, "      \"quality\": {:.4},", c.quality);
        let _ = writeln!(out, "      \"passes\": \"{}\",", c.passes);
        let _ = writeln!(out, "      \"micros\": {},", c.micros);
        let _ = writeln!(out, "      \"fuel_spent\": {}", c.fuel_spent);
        let _ = writeln!(out, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"summary\": {{");
    let _ = writeln!(out, "    \"exact_value\": {exact},");
    let _ = writeln!(out, "    \"budgets\": {},", cells.len());
    let _ = writeln!(
        out,
        "    \"first_exact_fuel\": {},",
        cells
            .iter()
            .find(|c| c.confidence == "exact")
            .map_or("null".into(), |c| fuel_label(c.fuel))
    );
    let _ = writeln!(out, "    \"quality_monotone\": true");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// E15: the quality-vs-budget curve of anytime evaluation. Returns the
/// markdown table and writes `BENCH_anytime.json` to the working
/// directory. Panics if quality ever decreases as the budget grows —
/// that is the acceptance property, checked on every run.
pub fn e15(quick: bool) -> Vec<Table> {
    let side: u32 = if quick { 10 } else { 24 };
    let order = side * side;
    let a = grid(side, side);
    let x = v("e15x");
    let y = v("e15y");
    let query = cnt([x, y], not(dist_le(x, y, 2)));

    // The exact baseline: an unbounded anytime run collapses to one
    // exact pass.
    let cfg = AnytimeConfig::default();
    let unbounded = Evaluator::builder()
        .kind(EngineKind::Cover)
        .build()
        .expect("the unbounded cover engine is a valid configuration");
    let exact = unbounded
        .eval_ground_anytime(&a, &query, &cfg, None, None)
        .expect("unbounded run")
        .value;
    assert!(exact > 0, "the E15 query must have witnesses");

    // An increasing fuel sweep from starved (nothing banked) through
    // degraded (sample lower bounds) to exact, ending unbounded.
    let budgets: Vec<Option<u64>> = if quick {
        vec![Some(300), Some(1_000), Some(3_000), Some(30_000), None]
    } else {
        vec![
            Some(300),
            Some(1_000),
            Some(3_000),
            Some(10_000),
            Some(30_000),
            Some(100_000),
            Some(1_000_000),
            None,
        ]
    };

    let mut t = Table::new(
        format!("E15: anytime quality vs fuel budget on grid({side},{side}), cover engine"),
        &[
            "fuel",
            "passes",
            "confidence",
            "value",
            "quality",
            "micros",
            "spent",
        ],
    );
    let mut cells = Vec::new();
    for fuel in budgets {
        let mut b = Evaluator::builder().kind(EngineKind::Cover);
        if let Some(f) = fuel {
            b = b.fuel(f);
        }
        let ev = b.build().expect("budgeted cover engine");
        let t0 = Instant::now();
        let cell = match ev.eval_ground_anytime(&a, &query, &cfg, None, None) {
            Ok(out) => {
                let quality = (out.value as f64 / exact as f64).clamp(0.0, 1.0);
                BudgetCell {
                    fuel,
                    confidence: out.confidence.to_string(),
                    value: Some(out.value),
                    quality,
                    passes: out
                        .passes
                        .iter()
                        .map(|p| p.pass.name())
                        .collect::<Vec<_>>()
                        .join(">"),
                    micros: t0.elapsed().as_micros() as u64,
                    fuel_spent: out.fuel_spent(),
                }
            }
            Err(Error::Interrupted(i)) => BudgetCell {
                fuel,
                confidence: "none".into(),
                value: None,
                quality: 0.0,
                passes: String::new(),
                micros: t0.elapsed().as_micros() as u64,
                fuel_spent: i.fuel_spent,
            },
            Err(e) => panic!("E15 run failed: {e}"),
        };
        // A lower bound's tag promises value <= exact; re-check it here
        // where the exact value is in hand.
        if let (Some(val), "lower_bound") = (cell.value, cell.confidence.as_str()) {
            assert!(val <= exact, "lower bound {val} exceeds exact {exact}");
        }
        t.row(vec![
            fuel_label(cell.fuel),
            cell.passes.clone(),
            cell.confidence.clone(),
            cell.value.map_or("-".into(), |x| x.to_string()),
            format!("{:.3}", cell.quality),
            cell.micros.to_string(),
            cell.fuel_spent.to_string(),
        ]);
        cells.push(cell);
    }

    // The acceptance property: more budget never means a worse answer.
    for w in cells.windows(2) {
        assert!(
            w[1].quality >= w[0].quality,
            "quality regressed from {:.4} (fuel {}) to {:.4} (fuel {})",
            w[0].quality,
            fuel_label(w[0].fuel),
            w[1].quality,
            fuel_label(w[1].fuel),
        );
    }
    let last = cells.last().expect("at least one budget");
    assert_eq!(last.confidence, Confidence::Exact.to_string());
    assert!((last.quality - 1.0).abs() < f64::EPSILON);

    let json = emit_json(&cells, order, exact, quick);
    match std::fs::write("BENCH_anytime.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_anytime.json"),
        Err(e) => eprintln!("could not write BENCH_anytime.json: {e}"),
    }
    vec![t]
}
