//! E7/E8 — the paper's application examples: SQL COUNT workloads
//! (Example 5.3) and the coloured-graph cardinality queries
//! (Example 5.4).

use std::time::Instant;

use foc_core::sql::{
    customers_per_country, orders_per_berlin_customer, total_customers_and_orders,
};
use foc_core::{EngineKind, Evaluator};
use foc_logic::build::*;
use foc_structures::gen::{colored_digraph, sql_database, ColoredParams, SqlDbParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{fmt_duration, Table};

/// E7: Example 5.3's SQL COUNT queries on the Customer/Order database.
pub fn e7(quick: bool) -> Vec<Table> {
    let sizes: &[u32] = if quick {
        &[100, 500]
    } else {
        &[100, 500, 2_000, 8_000]
    };
    let cover_cap = 500;
    let mut t = Table::new(
        "E7 (Example 5.3): SQL COUNT workloads — GROUP BY country",
        &[
            "customers",
            "‖A‖",
            "groups",
            "naive",
            "local",
            "cover",
            "correct",
        ],
    );
    let mut rng = StdRng::seed_from_u64(77);
    for &n in sizes {
        let db = sql_database(
            SqlDbParams {
                customers: n,
                countries: (n / 40).max(3),
                cities: (n / 20).max(5),
                avg_orders: 2.0,
            },
            &mut rng,
        );
        let q = customers_per_country(true);
        let truth = db.customers_per_country();
        let mut cells = vec![
            n.to_string(),
            db.structure.size().to_string(),
            String::new(),
        ];
        let mut correct = true;
        for kind in [EngineKind::Naive, EngineKind::Local, EngineKind::Cover] {
            if kind == EngineKind::Cover && n > cover_cap {
                cells.push("—".into());
                continue;
            }
            let ev = Evaluator::builder().kind(kind).build().unwrap();
            let t0 = Instant::now();
            let res = ev.query(&db.structure, &q).unwrap();
            let dt = t0.elapsed();
            cells[2] = res.rows.len().to_string();
            for row in &res.rows {
                let ci = db
                    .countries
                    .iter()
                    .position(|&c| c == row.elems[0])
                    .unwrap();
                correct &= row.counts[0] as usize == truth[ci];
            }
            cells.push(fmt_duration(dt));
        }
        cells.push(if correct { "✓".into() } else { "✗".into() });
        t.row(cells);
    }
    t.note(
        "The Customer/Order database has country/city hub elements, so its \
         Gaifman graph is *not* from a nowhere dense class; on such data the \
         candidate-driven reference evaluation behaves like an index join and \
         wins on constants, while the decomposed engines remain correct and \
         near-linear. The paper's guarantees concern sparse classes (E3/E4).",
    );

    let mut t2 = Table::new(
        "E7b: the other two statements of Example 5.3 (Local engine)",
        &[
            "customers",
            "total customers/orders",
            "Berlin rows",
            "t(totals)",
            "t(Berlin)",
        ],
    );
    let mut rng = StdRng::seed_from_u64(78);
    for &n in sizes {
        let db = sql_database(
            SqlDbParams {
                customers: n,
                countries: (n / 40).max(3),
                cities: (n / 20).max(5),
                avg_orders: 2.0,
            },
            &mut rng,
        );
        let ev = Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap();
        let t0 = Instant::now();
        let totals = ev
            .query(&db.structure, &total_customers_and_orders())
            .unwrap();
        let tt = t0.elapsed();
        let t0 = Instant::now();
        let berlin = ev
            .query(&db.structure, &orders_per_berlin_customer())
            .unwrap();
        let tb = t0.elapsed();
        let total_orders: usize = db.order_counts.iter().sum();
        assert_eq!(totals.rows[0].counts, vec![n as i64, total_orders as i64]);
        t2.row(vec![
            n.to_string(),
            format!(
                "{} / {}",
                totals.rows[0].counts[0], totals.rows[0].counts[1]
            ),
            berlin.rows.len().to_string(),
            fmt_duration(tt),
            fmt_duration(tb),
        ]);
    }
    vec![t, t2]
}

/// E8: Example 5.4's triangle/colour cardinality statistics.
pub fn e8(quick: bool) -> Vec<Table> {
    let sizes: &[u32] = if quick {
        &[200, 400]
    } else {
        &[200, 400, 800, 1_600]
    };
    let naive_cap = if quick { 400 } else { 800 };
    let mut t = Table::new(
        "E8 (Example 5.4): t_Δ,R = #(x).(t_Δ(x) = t_R) on coloured digraphs",
        &["n", "value", "naive", "local", "agree"],
    );
    let x = v("e8x");
    let y = v("e8y");
    let z = v("e8z");
    let t_delta = cnt_vec(
        vec![y, z],
        and_all([
            atom_vec("E", vec![x, y]),
            atom_vec("E", vec![y, z]),
            atom_vec("E", vec![z, x]),
        ]),
    );
    let t_red = cnt_vec(vec![y], atom_vec("R", vec![y]));
    let term = cnt_vec(vec![x], teq(t_delta, t_red));
    let mut rng = StdRng::seed_from_u64(88);
    for &n in sizes {
        let s = colored_digraph(
            ColoredParams {
                n,
                avg_out_degree: 2.0,
                p_red: 0.005,
                p_blue: 0.3,
                p_green: 0.3,
            },
            &mut rng,
        );
        let local = Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap();
        let t0 = Instant::now();
        let lv = local.eval_ground(&s, &term).unwrap();
        let lt = t0.elapsed();
        if n > naive_cap {
            t.row(vec![
                n.to_string(),
                lv.to_string(),
                "—".into(),
                fmt_duration(lt),
                "—".into(),
            ]);
            continue;
        }
        let naive = Evaluator::builder()
            .kind(EngineKind::Naive)
            .build()
            .unwrap();
        let t0 = Instant::now();
        let nv = naive.eval_ground(&s, &term).unwrap();
        let nt = t0.elapsed();
        t.row(vec![
            n.to_string(),
            lv.to_string(),
            fmt_duration(nt),
            fmt_duration(lt),
            if nv == lv { "✓".into() } else { "✗".into() },
        ]);
    }
    t.note("The cardinality comparison t_Δ(x) = t_R nests a ground term inside a per-element guard — #-depth 2, exactly the FOC1(P) shape of Example 5.4.");
    vec![t]
}
