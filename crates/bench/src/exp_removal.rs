//! E10 — the Removal Lemma (Lemmas 7.8/7.9): exhaustive semantic
//! validation of the surgery and its rewritings, plus overhead
//! measurements.

use std::collections::BTreeSet;
use std::time::Instant;

use foc_covers::removal::{remove_element, remove_formula, remove_unary_count, RemovalContext};
use foc_eval::{Assignment, NaiveEvaluator};
use foc_logic::build::*;
use foc_logic::{Predicates, Var};
use foc_structures::gen::{bounded_degree, grid, random_tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::{fmt_duration, Table};

/// E10: Removal Lemma validation and overhead.
pub fn e10(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E10 (Lemmas 7.8/7.9): removal surgery A ↦ A *_r d — correctness and overhead",
        &[
            "structure",
            "n",
            "checks",
            "mismatches",
            "‖A*d‖ / ‖A‖",
            "surgery time",
        ],
    );
    let preds = Predicates::standard();
    let x = v("e10x");
    let y = v("e10y");
    let z = v("e10z");
    let formulas = vec![
        atom("E", [x, y]),
        and(dist_le(x, y, 2), not(eq(x, y))),
        exists(z, and(atom("E", [x, z]), atom("E", [z, y]))),
        forall(z, or(not(atom("E", [x, z])), dist_le(z, y, 3))),
    ];
    let mut rng = StdRng::seed_from_u64(1010);
    let reps = if quick { 2 } else { 5 };
    let structures = vec![
        ("random tree", random_tree(24, &mut rng)),
        ("grid 5×5", grid(5, 5)),
        ("degree ≤ 3", bounded_degree(24, 3, 72, &mut rng)),
    ];
    for (name, s) in structures {
        let mut checks = 0u64;
        let mut mismatches = 0u64;
        let mut size_ratio = 0.0f64;
        let mut surgery_time = std::time::Duration::ZERO;
        for _ in 0..reps {
            let d = rng.gen_range(0..s.order());
            let ctx = RemovalContext::new(3);
            let t0 = Instant::now();
            let rem = remove_element(&s, d, &ctx);
            surgery_time += t0.elapsed();
            size_ratio += rem.structure.size() as f64 / s.size() as f64;
            // Formula rewriting: sampled assignments.
            for f in &formulas {
                for _ in 0..40 {
                    let a = rng.gen_range(0..s.order());
                    let b = rng.gen_range(0..s.order());
                    let pairs = [(x, a), (y, b)];
                    let vset: BTreeSet<Var> = pairs
                        .iter()
                        .filter(|(_, e)| *e == d)
                        .map(|(v, _)| *v)
                        .collect();
                    let mut ev = NaiveEvaluator::new(&s, &preds);
                    let mut env = Assignment::from_pairs(pairs);
                    let want = ev.check(f, &mut env).unwrap();
                    let rewritten = remove_formula(f, &vset, &ctx);
                    let mut ev2 = NaiveEvaluator::new(&rem.structure, &preds);
                    let mut env2 = Assignment::from_pairs(
                        pairs
                            .iter()
                            .filter(|(_, e)| *e != d)
                            .map(|(v, e)| (*v, rem.new_of_old[e])),
                    );
                    let got = ev2.check(&rewritten, &mut env2).unwrap();
                    checks += 1;
                    mismatches += u64::from(want != got);
                }
            }
            // Term rewriting (Lemma 7.9): degree terms at every element.
            let body = or(atom("E", [x, y]), dist_le(x, y, 2));
            let (when_d, when_not_d) = remove_unary_count(x, &[y], &body, &ctx);
            let term = cnt([y], body.clone());
            let mut ev = NaiveEvaluator::new(&s, &preds);
            let mut ev2 = NaiveEvaluator::new(&rem.structure, &preds);
            for a in s.universe() {
                let mut env = Assignment::from_pairs([(x, a)]);
                let want = ev.eval_term(&term, &mut env).unwrap();
                let got: i64 = if a == d {
                    when_d
                        .iter()
                        .map(|rc| {
                            let tt = cnt_vec(rc.counted.clone(), rc.body.clone());
                            ev2.eval_ground(&tt).unwrap()
                        })
                        .sum()
                } else {
                    when_not_d
                        .iter()
                        .map(|rc| {
                            let tt = cnt_vec(rc.counted.clone(), rc.body.clone());
                            let mut env2 = Assignment::from_pairs([(x, rem.new_of_old[&a])]);
                            ev2.eval_term(&tt, &mut env2).unwrap()
                        })
                        .sum()
                };
                checks += 1;
                mismatches += u64::from(want != got);
            }
        }
        t.row(vec![
            name.into(),
            s.order().to_string(),
            checks.to_string(),
            mismatches.to_string(),
            format!("{:.2}", size_ratio / reps as f64),
            fmt_duration(surgery_time / reps),
        ]);
    }
    t.note(
        "The size ratio reflects the relation splitting (R̃_I) plus the S_i \
         markers; it stays a small constant, as the linear-time claim in \
         Section 7.3 requires.",
    );
    vec![t]
}
