//! E17 — WAL durability: the price of the durable-ack contract and the
//! cost of recovery as the log grows.
//!
//! The first half measures what `foc serve --wal-dir` adds to an
//! acknowledged update under each fsync policy: the same seeded toggle
//! stream is committed through a [`DeltaStructure`] with no WAL at all
//! (`off`, the pre-durability baseline), then with a real on-disk WAL
//! under `never`, `interval:100`, and `always`. The per-update cost is
//! apply + append (+ fsync per policy) — exactly the ack path of the
//! server's writer lock. `always` buys ack-implies-durable at the price
//! of one fsync per update; `never` shows the framing/copy cost alone.
//!
//! The second half measures recovery time as a function of log length:
//! a directory is populated with a checkpoint plus R committed records,
//! then [`Wal::recover`] is timed cold — checkpoint parse, full log
//! scan with CRC verification, and per-record replay with fingerprint
//! verification. The cost must scale linearly in R (each record is
//! verified), so the JSON reports micros-per-record alongside the
//! totals.
//!
//! Besides the markdown tables, writes `BENCH_wal.json` to the current
//! directory; CI checks its schema and sanity bounds.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use foc_structures::gen::path;
use foc_structures::{DeltaStructure, Structure, TupleOp};
use foc_wal::{DirStore, FsyncPolicy, Wal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::Table;

/// Draws a seeded stream of single-tuple toggles over `E`: each op
/// inserts an absent edge or deletes a present one, so every commit is
/// effective.
fn toggle_stream(base: &Structure, count: usize, rng: &mut StdRng) -> Vec<TupleOp> {
    let order = base.order();
    let e = foc_logic::Symbol::new("E");
    let mut flipped: Vec<(u32, u32)> = Vec::new();
    let mut ops = Vec::with_capacity(count);
    while ops.len() < count {
        let u = rng.gen_range(0..order);
        let w = rng.gen_range(0..order);
        if u == w {
            continue;
        }
        let (a, b) = if u < w { (u, w) } else { (w, u) };
        let toggled = flipped.iter().filter(|&&p| p == (a, b)).count() % 2 == 1;
        let present = base.holds(e, &[a, b]) ^ toggled;
        flipped.push((a, b));
        ops.push(if present {
            TupleOp::delete("E", &[a, b])
        } else {
            TupleOp::insert("E", &[a, b])
        });
    }
    ops
}

fn median(mut vals: Vec<u64>) -> u64 {
    vals.sort_unstable();
    if vals.is_empty() {
        0
    } else {
        vals[vals.len() / 2]
    }
}

struct AckCell {
    policy: String,
    median_micros: u64,
    total_micros: u64,
    syncs: u64,
}

struct RecoveryCell {
    records: u64,
    log_bytes: u64,
    recover_micros: u64,
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("foc-bench-wal-{tag}-{}", std::process::id()))
}

/// Runs the toggle stream through one policy cell; `policy = None` is
/// the WAL-off baseline.
fn run_ack_cell(base: &Structure, ops: &[TupleOp], policy: Option<FsyncPolicy>) -> AckCell {
    let label = match policy {
        None => "off".to_string(),
        Some(p) => p.to_string(),
    };
    let dir = bench_dir(&label.replace(':', "-"));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut delta, mut wal) = match policy {
        None => (DeltaStructure::new(base.clone()), None),
        Some(p) => {
            let store = DirStore::open(&dir).expect("open bench wal dir");
            let (mut wal, rec) = Wal::recover(store, p, Some(base.clone())).expect("fresh recover");
            wal.checkpoint(rec.delta.current()).expect("checkpoint");
            (rec.delta, Some(wal))
        }
    };
    let mut micros = Vec::with_capacity(ops.len());
    let t_total = Instant::now();
    for op in ops {
        let batch = std::slice::from_ref(op);
        let t0 = Instant::now();
        let info = delta.apply(batch).expect("toggle commits are in-range");
        assert!(info.changed > 0, "toggle stream must stay effective");
        if let Some(wal) = wal.as_mut() {
            wal.append_commit(info.epoch, delta.snapshot().fingerprint(), batch)
                .expect("append");
        }
        micros.push(t0.elapsed().as_micros() as u64);
    }
    let total_micros = t_total.elapsed().as_micros() as u64;
    let syncs = wal.as_ref().map(Wal::syncs).unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);
    AckCell {
        policy: label,
        median_micros: median(micros),
        total_micros,
        syncs,
    }
}

/// Populates a directory with a checkpoint + `records` commits, then
/// times a cold recovery of it.
fn run_recovery_cell(base: &Structure, records: usize, rng: &mut StdRng) -> RecoveryCell {
    let dir = bench_dir(&format!("recovery-{records}"));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DirStore::open(&dir).expect("open bench wal dir");
    let (mut wal, rec) =
        Wal::recover(store, FsyncPolicy::Never, Some(base.clone())).expect("fresh recover");
    let mut delta = rec.delta;
    wal.checkpoint(delta.current()).expect("checkpoint");
    let ops = toggle_stream(base, records, rng);
    for op in &ops {
        let batch = std::slice::from_ref(op);
        let info = delta.apply(batch).expect("toggle commits are in-range");
        wal.append_commit(info.epoch, delta.snapshot().fingerprint(), batch)
            .expect("append");
    }
    wal.sync().expect("final sync");
    let live_fp = delta.snapshot().fingerprint();
    drop(wal);
    drop(delta);

    let t0 = Instant::now();
    let (wal, rec) = Wal::recover(
        DirStore::open(&dir).expect("reopen"),
        FsyncPolicy::Always,
        None,
    )
    .expect("cold recovery");
    let recover_micros = t0.elapsed().as_micros() as u64;
    assert_eq!(rec.replayed, records as u64, "every record must replay");
    assert_eq!(
        rec.fingerprint, live_fp,
        "recovery must land on the live state"
    );
    let log_bytes = wal.log_bytes();
    let _ = std::fs::remove_dir_all(&dir);
    RecoveryCell {
        records: records as u64,
        log_bytes,
        recover_micros,
    }
}

fn emit_json(
    acks: &[AckCell],
    recoveries: &[RecoveryCell],
    order: u32,
    updates: usize,
    quick: bool,
) -> String {
    let off = acks
        .iter()
        .find(|c| c.policy == "off")
        .map(|c| c.median_micros)
        .unwrap_or(0);
    let always = acks
        .iter()
        .find(|c| c.policy == "always")
        .map(|c| c.median_micros)
        .unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"experiment\": \"E17 WAL durability: durable-ack overhead and recovery time\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"order\": {order},");
    let _ = writeln!(out, "  \"updates_per_policy\": {updates},");
    let _ = writeln!(
        out,
        "  \"note\": \"durable_ack times apply+append per policy against the off baseline; recovery times a cold Wal::recover of checkpoint + R records\","
    );
    let _ = writeln!(out, "  \"durable_ack\": [");
    for (i, c) in acks.iter().enumerate() {
        let overhead = c.median_micros.saturating_sub(off);
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"policy\": \"{}\",", c.policy);
        let _ = writeln!(out, "      \"median_update_micros\": {},", c.median_micros);
        let _ = writeln!(out, "      \"total_micros\": {},", c.total_micros);
        let _ = writeln!(out, "      \"syncs\": {},", c.syncs);
        let _ = writeln!(out, "      \"overhead_vs_off_micros\": {overhead}");
        let _ = writeln!(out, "    }}{}", if i + 1 < acks.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"recovery\": [");
    for (i, c) in recoveries.iter().enumerate() {
        let per_record = c.recover_micros as f64 / (c.records as f64).max(1.0);
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"records\": {},", c.records);
        let _ = writeln!(out, "      \"log_bytes\": {},", c.log_bytes);
        let _ = writeln!(out, "      \"recover_micros\": {},", c.recover_micros);
        let _ = writeln!(out, "      \"micros_per_record\": {per_record:.3}");
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < recoveries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"summary\": {{");
    let _ = writeln!(out, "    \"off_median_micros\": {off},");
    let _ = writeln!(out, "    \"always_median_micros\": {always},");
    let _ = writeln!(
        out,
        "    \"always_overhead_micros\": {},",
        always.saturating_sub(off)
    );
    let _ = writeln!(
        out,
        "    \"largest_recovery_micros_per_record\": {:.3}",
        recoveries
            .last()
            .map(|c| c.recover_micros as f64 / (c.records as f64).max(1.0))
            .unwrap_or(0.0)
    );
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// E17: durable-ack overhead per fsync policy plus recovery time vs log
/// length. Returns the markdown tables and writes `BENCH_wal.json` to
/// the working directory.
pub fn e17(quick: bool) -> Vec<Table> {
    let order: u32 = if quick { 512 } else { 4096 };
    let updates: usize = if quick { 48 } else { 256 };
    let record_counts: &[usize] = if quick {
        &[16, 64, 256]
    } else {
        &[64, 256, 1024]
    };
    let base = path(order);

    let mut rng = StdRng::seed_from_u64(17);
    let ops = toggle_stream(&base, updates, &mut rng);

    let policies = [
        None,
        Some(FsyncPolicy::Never),
        Some(FsyncPolicy::Interval(Duration::from_millis(100))),
        Some(FsyncPolicy::Always),
    ];
    let mut ack_table = Table::new(
        format!("E17a: durable-ack overhead on path({order}), {updates} updates"),
        &["policy", "median µs/update", "total µs", "fsyncs"],
    );
    let mut acks = Vec::new();
    for p in policies {
        let cell = run_ack_cell(&base, &ops, p);
        ack_table.row(vec![
            cell.policy.clone(),
            cell.median_micros.to_string(),
            cell.total_micros.to_string(),
            cell.syncs.to_string(),
        ]);
        acks.push(cell);
    }

    let mut rec_table = Table::new(
        format!("E17b: cold recovery time vs log length on path({order})"),
        &["records", "log bytes", "recover µs", "µs/record"],
    );
    let mut recoveries = Vec::new();
    for &r in record_counts {
        let cell = run_recovery_cell(&base, r, &mut rng);
        rec_table.row(vec![
            cell.records.to_string(),
            cell.log_bytes.to_string(),
            cell.recover_micros.to_string(),
            format!("{:.1}", cell.recover_micros as f64 / cell.records as f64),
        ]);
        recoveries.push(cell);
    }

    let json = emit_json(&acks, &recoveries, order, updates, quick);
    match std::fs::write("BENCH_wal.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_wal.json"),
        Err(e) => eprintln!("could not write BENCH_wal.json: {e}"),
    }
    vec![ack_table, rec_table]
}
