//! E5 — the decomposition machinery of Lemma 6.4 / Theorem 6.10:
//! number and width of the produced basic cl-terms, rewriting time, and
//! semantic correctness against the reference evaluator.

use std::sync::Arc;
use std::time::Instant;

use foc_eval::NaiveEvaluator;
use foc_locality::decompose::decompose_ground;
use foc_logic::build::*;
use foc_logic::{Formula, Predicates, Term, Var};
use foc_structures::gen::{graph_structure, grid, path};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{fmt_duration, Table};

fn bodies() -> Vec<(&'static str, Vec<Var>, Arc<Formula>)> {
    let x = v("e5x");
    let y = v("e5y");
    let z = v("e5z");
    let w = v("e5w");
    vec![
        ("k=1: loops", vec![x], atom("E", [x, x])),
        ("k=2: edges", vec![x, y], atom("E", [x, y])),
        (
            "k=2: non-edges",
            vec![x, y],
            and(not(atom("E", [x, y])), not(eq(x, y))),
        ),
        (
            "k=3: triangles",
            vec![x, y, z],
            and_all([atom("E", [x, y]), atom("E", [y, z]), atom("E", [z, x])]),
        ),
        (
            "k=3: scattered",
            vec![x, y, z],
            and_all([
                not(atom("E", [x, y])),
                not(atom("E", [y, z])),
                not(atom("E", [z, x])),
                not(eq(x, y)),
                not(eq(y, z)),
                not(eq(x, z)),
            ]),
        ),
        (
            "k=4: 4-paths",
            vec![x, y, z, w],
            and_all([atom("E", [x, y]), atom("E", [y, z]), atom("E", [z, w])]),
        ),
        (
            "k=4: edge + far edge",
            vec![x, y, z, w],
            and_all([atom("E", [x, y]), atom("E", [z, w]), not(dist_le(x, z, 3))]),
        ),
    ]
}

/// E5: decomposition size/time plus correctness.
pub fn e5(_quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E5 (Lemma 6.4 / Thm 6.10): cl-decomposition — size, time, correctness",
        &[
            "body",
            "width k",
            "basic cl-terms",
            "max width",
            "rewrite time",
            "correct",
        ],
    );
    let preds = Predicates::standard();
    let mut rng = StdRng::seed_from_u64(55);
    let structures = vec![
        path(7),
        grid(3, 3),
        graph_structure(8, &[(0, 1), (1, 2), (2, 0), (4, 5), (6, 7)]),
        foc_structures::gen::random_tree(9, &mut rng),
    ];
    for (label, vars, body) in bodies() {
        let t0 = Instant::now();
        let cl = match decompose_ground(&body, &vars) {
            Ok(cl) => cl,
            Err(e) => {
                t.row(vec![
                    label.into(),
                    vars.len().to_string(),
                    format!("(rejected: {e})"),
                    "—".into(),
                    "—".into(),
                    "n/a".into(),
                ]);
                continue;
            }
        };
        let dt = t0.elapsed();
        // Correctness on every test structure.
        let mut ok = true;
        for s in &structures {
            let term = Arc::new(Term::Count(vars.clone().into_boxed_slice(), body.clone()));
            let want = NaiveEvaluator::new(s, &preds).eval_ground(&term).unwrap();
            let got = cl.eval_naive(s, &preds, None).unwrap();
            ok &= want == got;
        }
        t.row(vec![
            label.into(),
            vars.len().to_string(),
            cl.num_basics().to_string(),
            cl.max_width().to_string(),
            fmt_duration(dt),
            if ok { "✓".into() } else { "✗".into() },
        ]);
    }
    t.note(
        "Forced-edge pruning keeps conjunctive bodies at a handful of basic \
         cl-terms; fully unconstrained bodies grow with the number of \
         connectivity patterns (2^(k choose 2) before pruning), matching the \
         f(‖ξ‖) factor in Theorem 5.5.",
    );
    vec![t]
}
