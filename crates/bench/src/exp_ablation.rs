//! E11 — ablations of the implementation's design choices (DESIGN.md
//! §3/§5): what do forced-edge pruning, guard-atom candidates, the
//! support prefilter, and the least-centre cover rule actually buy?

use std::sync::Arc;
use std::time::Instant;

use foc_covers::cover::{build_cover, trivial_cover};
use foc_locality::decompose::{decompose_ground, decompose_ground_unpruned, decompose_unary};
use foc_locality::local_eval::{ClValue, LocalEvaluator};
use foc_logic::build::*;
use foc_logic::{Predicates, Var};
use foc_structures::gen::{grid, random_tree, sql_database, SqlDbParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{fmt_duration, Table};

/// E11a: forced-edge pruning in the pattern enumeration of Lemma 6.4.
fn ablation_pruning() -> Table {
    let mut t = Table::new(
        "E11a: forced-edge pruning of the connectivity-pattern enumeration",
        &[
            "body",
            "k",
            "basics (pruned)",
            "basics (full)",
            "time (pruned)",
            "time (full)",
        ],
    );
    let x = v("abx");
    let y = v("aby");
    let z = v("abz");
    let w = v("abw");
    let bodies: Vec<(&str, Vec<Var>, Arc<foc_logic::Formula>)> = vec![
        ("edges", vec![x, y], atom("E", [x, y])),
        (
            "triangles",
            vec![x, y, z],
            and_all([atom("E", [x, y]), atom("E", [y, z]), atom("E", [z, x])]),
        ),
        (
            "4-paths",
            vec![x, y, z, w],
            and_all([atom("E", [x, y]), atom("E", [y, z]), atom("E", [z, w])]),
        ),
        (
            "SQL-style 4-atom",
            vec![x, y, z, w],
            atom_vec("R4", vec![x, y, z, w]),
        ),
    ];
    for (label, vars, body) in bodies {
        let t0 = Instant::now();
        let pruned = decompose_ground(&body, &vars);
        let tp = t0.elapsed();
        let t0 = Instant::now();
        let full = decompose_ground_unpruned(&body, &vars);
        let tf = t0.elapsed();
        t.row(vec![
            label.into(),
            vars.len().to_string(),
            pruned
                .as_ref()
                .map(|c| c.num_basics().to_string())
                .unwrap_or("—".into()),
            full.as_ref()
                .map(|c| c.num_basics().to_string())
                .unwrap_or("—".into()),
            fmt_duration(tp),
            fmt_duration(tf),
        ]);
    }
    t.note(
        "Pruning collapses conjunctive (atom-guarded) bodies to a single \
         connectivity pattern; without it the symbolic size grows with \
         2^(k choose 2) — a pure win inside the f(‖ξ‖) factor.",
    );
    t
}

/// E11b: guard-atom candidates and the support prefilter in the ball
/// evaluator, on the SQL database (hub-shaped data, where they matter
/// most).
fn ablation_candidates() -> Table {
    let mut t = Table::new(
        "E11b: ball-evaluator candidate strategies (GROUP-BY count term on the SQL database)",
        &[
            "customers",
            "full (both on)",
            "no atom candidates",
            "no support filter",
        ],
    );
    let xco = v("abco");
    let xid = v("abid");
    let body = {
        let xfi = Var::fresh("abfi");
        let xla = Var::fresh("abla");
        let xci = Var::fresh("abci");
        let xph = Var::fresh("abph");
        exists_all(
            [xfi, xla, xci, xph],
            atom_vec("Customer", vec![xid, xfi, xla, xci, xco, xph]),
        )
    };
    let cl = decompose_unary(&body, &[xco, xid]).expect("SQL body decomposes");
    let preds = Predicates::standard();
    let mut rng = StdRng::seed_from_u64(1111);
    for customers in [200u32, 800] {
        let db = sql_database(
            SqlDbParams {
                customers,
                countries: 10,
                cities: 20,
                avg_orders: 1.0,
            },
            &mut rng,
        );
        let mut cells = vec![customers.to_string()];
        let mut reference: Option<ClValue> = None;
        for (atoms, support) in [(true, true), (false, true), (true, false)] {
            let mut lev = LocalEvaluator::new(&db.structure, &preds);
            lev.use_atom_candidates = atoms;
            lev.use_support = support;
            let t0 = Instant::now();
            let val = lev.eval_clterm(&cl).expect("evaluates");
            let dt = t0.elapsed();
            match &reference {
                None => reference = Some(val),
                Some(r) => assert_eq!(*r, val, "ablation changed the result!"),
            }
            cells.push(fmt_duration(dt));
        }
        t.row(cells);
    }
    t.note(
        "Both optimisations are semantics-preserving (asserted during the \
         run). Atom candidates replace δ-ball scans by relational index \
         lookups; the support filter skips elements that cannot head a \
         satisfying tuple.",
    );
    t
}

/// E11c: least-centre cover rule vs the trivial per-element cover.
fn ablation_cover_rule(quick: bool) -> Table {
    let mut t = Table::new(
        "E11c: cover construction rule — least-centre vs trivial per-element",
        &[
            "class",
            "n",
            "r",
            "clusters (LC)",
            "Σ|X| (LC)",
            "clusters (triv)",
            "Σ|X| (triv)",
        ],
    );
    let sizes: &[u32] = if quick { &[1_000] } else { &[1_000, 8_000] };
    let mut rng = StdRng::seed_from_u64(2222);
    for &n in sizes {
        let structures = vec![
            ("tree", random_tree(n, &mut rng)),
            ("grid", {
                let side = (n as f64).sqrt().round() as u32;
                grid(side, side)
            }),
        ];
        for (class, s) in structures {
            for r in [1u32, 2] {
                let g = s.gaifman();
                let lc = build_cover(g, r);
                let tv = trivial_cover(g, r);
                assert!(lc.verify(g) && tv.verify(g));
                t.row(vec![
                    class.into(),
                    s.order().to_string(),
                    r.to_string(),
                    lc.clusters.len().to_string(),
                    lc.total_weight().to_string(),
                    tv.clusters.len().to_string(),
                    tv.total_weight().to_string(),
                ]);
            }
        }
    }
    t.note(
        "The least-centre rule shares clusters between nearby elements, so \
         there are far fewer clusters — which is what the cover engine pays \
         for (per-cluster induced substructures, removals, recursion). The \
         price is radius 2r instead of r, so the total weight Σ|X| is \
         larger; the trade is worthwhile because per-cluster overhead \
         dominates per-element overhead in the Section 8.2 strategy.",
    );
    t
}

/// E11: all ablations.
pub fn e11(quick: bool) -> Vec<Table> {
    vec![
        ablation_pruning(),
        ablation_candidates(),
        ablation_cover_rule(quick),
    ]
}
