//! E13 — the service mode under load: a seeded loopback stress run
//! against `foc-serve`, measuring throughput, tail latency, load
//! shedding, and the resident-byte watermark, followed by a graceful
//! drain.
//!
//! Besides the markdown table, this experiment writes `BENCH_serve.json`
//! to the current directory: one machine-readable record per
//! concurrency level plus the drain report. On a single-CPU host the
//! concurrency sweep measures queueing, not parallel speedup — the JSON
//! carries a `note` saying so rather than hiding it.
//!
//! A second section measures the cost of observability itself: the same
//! seeded load with telemetry fully off (no tracing, no listener)
//! versus fully on (request tracing, tail sampling, and a live
//! `/metrics` + `/stats` scraper polling throughout the run). The
//! on/off pair and their throughput ratio land in
//! `BENCH_telemetry.json`.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use foc_core::EngineKind;
use foc_obs::names;
use foc_serve::{start, ServerConfig};
use foc_structures::gen::grid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::Table;

/// The deterministic request pool: a mix of cheap checks and heavier
/// counting terms over the grid, all well-formed (failures measured by
/// E13 are sheds, not errors).
const QUERIES: [(&str, &str); 4] = [
    ("check", "exists x. exists y. E(x,y)"),
    ("check", "@even(#(x). exists y. E(x,y))"),
    ("eval", "#(x,y). E(x,y)"),
    ("eval", "#(x). exists y. E(x,y)"),
];

/// How much observability machinery a stress cell runs with.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Telemetry {
    /// Tracing disabled, no listener — the PR 6 fast path.
    Off,
    /// Tracing + tail sampling on, telemetry listener bound, and a
    /// scraper thread polling `/metrics` and `/stats` during the run.
    On,
}

struct LoadCell {
    clients: usize,
    requests: usize,
    served: u64,
    shed: u64,
    errors: u64,
    secs: f64,
    p50_micros: u64,
    p99_micros: u64,
    peak_resident: u64,
    drain_interrupted: u64,
    drain_micros: u64,
    traces_kept: u64,
    scrapes: u64,
}

impl LoadCell {
    fn throughput(&self) -> f64 {
        self.served as f64 / self.secs.max(1e-9)
    }
}

/// One blocking HTTP GET against the telemetry listener; returns true
/// when a 200 came back.
fn scrape(addr: std::net::SocketAddr, path: &str) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok();
    if write!(stream, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").is_err() {
        return false;
    }
    let mut raw = String::new();
    stream.read_to_string(&mut raw).ok();
    raw.starts_with("HTTP/1.1 200")
}

/// Runs one stress cell: `clients` concurrent connections, each sending
/// `per_client` seeded requests back-to-back, against a fresh server.
fn run_cell(
    seed: u64,
    side: u32,
    clients: usize,
    per_client: usize,
    telemetry: Telemetry,
) -> LoadCell {
    let handle = start(
        grid(side, side),
        ServerConfig {
            max_inflight: 4,
            queue: 8,
            engine: EngineKind::Local,
            max_timeout: Duration::from_secs(30),
            tracing: telemetry == Telemetry::On,
            trace_sample: 16,
            telemetry_addr: match telemetry {
                Telemetry::On => Some("127.0.0.1:0".to_string()),
                Telemetry::Off => None,
            },
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = handle.addr();

    // With telemetry on, a scraper hammers the second socket for the
    // whole run — the overhead measured is "observed in production",
    // not just "tracing compiled in".
    let scrape_stop = Arc::new(AtomicBool::new(false));
    let scraper = handle.telemetry_addr().map(|taddr| {
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                scrape(taddr, "/metrics");
                scrape(taddr, "/stats");
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    });

    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9e37));
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut latencies = Vec::with_capacity(per_client);
                let (mut served, mut shed, mut errors) = (0u64, 0u64, 0u64);
                for i in 0..per_client {
                    let (mode, query) = QUERIES[rng.gen_range(0..QUERIES.len())];
                    let req = format!(
                        "{{\"id\":\"c{c}-{i}\",\"mode\":\"{mode}\",\"query\":\"{query}\"}}"
                    );
                    let t = Instant::now();
                    writeln!(writer, "{req}").expect("send");
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("recv");
                    let micros = t.elapsed().as_micros() as u64;
                    if line.contains("\"type\":\"result\"") {
                        served += 1;
                        latencies.push(micros);
                    } else if line.contains("\"type\":\"shed\"") {
                        shed += 1;
                    } else {
                        errors += 1;
                    }
                }
                (latencies, served, shed, errors)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let (mut served, mut shed, mut errors) = (0u64, 0u64, 0u64);
    for w in workers {
        let (l, s, sh, e) = w.join().expect("client thread");
        latencies.extend(l);
        served += s;
        shed += sh;
        errors += e;
    }
    let secs = t0.elapsed().as_secs_f64();
    scrape_stop.store(true, Ordering::Relaxed);
    if let Some(s) = scraper {
        s.join().expect("scraper thread");
    }
    let peak_resident = handle.peak_resident_bytes();
    let report = handle.drain();
    // The server counts sheds too; the client-side tally is the ground
    // truth for the cell, the counter must agree.
    debug_assert_eq!(report.final_metrics.counter(names::SERVE_SHED), shed);

    latencies.sort_unstable();
    let pct = |p: usize| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            latencies[(latencies.len() * p / 100).min(latencies.len() - 1)]
        }
    };
    LoadCell {
        clients,
        requests: clients * per_client,
        served,
        shed,
        errors,
        secs,
        p50_micros: pct(50),
        p99_micros: pct(99),
        peak_resident,
        drain_interrupted: report.interrupted,
        drain_micros: report.drain.as_micros() as u64,
        traces_kept: report.final_metrics.counter(names::SERVE_TRACES_KEPT),
        scrapes: report.final_metrics.counter(names::SERVE_TELEMETRY_SCRAPES),
    }
}

fn emit_json(cells: &[LoadCell], quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"experiment\": \"E13 service mode under load\",");
    let _ = writeln!(out, "  \"engine\": \"local\",");
    let _ = writeln!(out, "  \"cpus\": {},", foc_parallel::available_threads());
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(
        out,
        "  \"note\": \"loopback stress with max_inflight=4, queue=8; on a 1-CPU host the client sweep measures queueing and shedding, not parallel speedup\","
    );
    let _ = writeln!(out, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"clients\": {},", c.clients);
        let _ = writeln!(out, "      \"requests\": {},", c.requests);
        let _ = writeln!(out, "      \"served\": {},", c.served);
        let _ = writeln!(out, "      \"shed\": {},", c.shed);
        let _ = writeln!(out, "      \"errors\": {},", c.errors);
        let _ = writeln!(out, "      \"seconds\": {:.6},", c.secs);
        let _ = writeln!(out, "      \"throughput_rps\": {:.3},", c.throughput());
        let _ = writeln!(out, "      \"latency_micros\": {{");
        let _ = writeln!(out, "        \"p50\": {},", c.p50_micros);
        let _ = writeln!(out, "        \"p99\": {}", c.p99_micros);
        let _ = writeln!(out, "      }},");
        let _ = writeln!(out, "      \"peak_resident_bytes\": {},", c.peak_resident);
        let _ = writeln!(out, "      \"drain\": {{");
        let _ = writeln!(out, "        \"interrupted\": {},", c.drain_interrupted);
        let _ = writeln!(out, "        \"micros\": {}", c.drain_micros);
        let _ = writeln!(out, "      }}");
        let _ = writeln!(out, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn emit_telemetry_json(off: &LoadCell, on: &LoadCell, quick: bool) -> String {
    let ratio = on.throughput() / off.throughput().max(1e-9);
    let cell = |out: &mut String, label: &str, c: &LoadCell, last: bool| {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"telemetry\": \"{label}\",");
        let _ = writeln!(out, "      \"clients\": {},", c.clients);
        let _ = writeln!(out, "      \"requests\": {},", c.requests);
        let _ = writeln!(out, "      \"served\": {},", c.served);
        let _ = writeln!(out, "      \"shed\": {},", c.shed);
        let _ = writeln!(out, "      \"seconds\": {:.6},", c.secs);
        let _ = writeln!(out, "      \"throughput_rps\": {:.3},", c.throughput());
        let _ = writeln!(out, "      \"latency_micros\": {{");
        let _ = writeln!(out, "        \"p50\": {},", c.p50_micros);
        let _ = writeln!(out, "        \"p99\": {}", c.p99_micros);
        let _ = writeln!(out, "      }},");
        let _ = writeln!(out, "      \"traces_kept\": {},", c.traces_kept);
        let _ = writeln!(out, "      \"scrapes\": {}", c.scrapes);
        let _ = writeln!(out, "    }}{}", if last { "" } else { "," });
    };
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"experiment\": \"E13b telemetry overhead\",");
    let _ = writeln!(out, "  \"engine\": \"local\",");
    let _ = writeln!(out, "  \"cpus\": {},", foc_parallel::available_threads());
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(
        out,
        "  \"note\": \"same seeded load with telemetry fully off vs fully on (tracing + tail sampling + a live /metrics + /stats scraper); on-vs-off throughput ratio below 1.0 is the observability tax\","
    );
    let _ = writeln!(out, "  \"on_off_throughput_ratio\": {ratio:.4},");
    let _ = writeln!(out, "  \"cells\": [");
    cell(&mut out, "off", off, false);
    cell(&mut out, "on", on, true);
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// E13: the loopback stress run. Returns the markdown tables and writes
/// `BENCH_serve.json` plus `BENCH_telemetry.json` to the working
/// directory.
pub fn e13(quick: bool) -> Vec<Table> {
    let side: u32 = if quick { 12 } else { 24 };
    let per_client: usize = if quick { 20 } else { 60 };
    let mut t = Table::new(
        "E13: service mode under load (loopback, max_inflight=4, queue=8)",
        &[
            "clients",
            "requests",
            "served",
            "shed",
            "errors",
            "rps",
            "p50 µs",
            "p99 µs",
            "peak bytes",
            "drain",
        ],
    );
    let mut cells = Vec::new();
    for clients in [1usize, 4, 16] {
        let cell = run_cell(42, side, clients, per_client, Telemetry::Off);
        assert_eq!(cell.errors, 0, "well-formed requests must not error");
        assert_eq!(
            cell.served + cell.shed,
            cell.requests as u64,
            "every request is answered exactly once"
        );
        assert_eq!(cell.drain_interrupted, 0, "idle drain must be clean");
        t.row(vec![
            cell.clients.to_string(),
            cell.requests.to_string(),
            cell.served.to_string(),
            cell.shed.to_string(),
            cell.errors.to_string(),
            format!("{:.0}", cell.throughput()),
            cell.p50_micros.to_string(),
            cell.p99_micros.to_string(),
            cell.peak_resident.to_string(),
            format!("{}µs", cell.drain_micros),
        ]);
        cells.push(cell);
    }
    let json = emit_json(&cells, quick);
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }

    // E13b: the observability tax. Same seeded load at the middle
    // concurrency, telemetry fully off vs fully on (with a scraper
    // polling the second socket throughout).
    let mut tt = Table::new(
        "E13b: telemetry overhead (4 clients, tracing + live scraper vs off)",
        &[
            "telemetry",
            "served",
            "shed",
            "rps",
            "p50 µs",
            "p99 µs",
            "traces",
            "scrapes",
        ],
    );
    let off = run_cell(42, side, 4, per_client, Telemetry::Off);
    let on = run_cell(42, side, 4, per_client, Telemetry::On);
    for (label, cell) in [("off", &off), ("on", &on)] {
        assert_eq!(cell.errors, 0, "well-formed requests must not error");
        tt.row(vec![
            label.to_string(),
            cell.served.to_string(),
            cell.shed.to_string(),
            format!("{:.0}", cell.throughput()),
            cell.p50_micros.to_string(),
            cell.p99_micros.to_string(),
            cell.traces_kept.to_string(),
            cell.scrapes.to_string(),
        ]);
    }
    assert_eq!(off.traces_kept, 0, "telemetry off must keep no traces");
    assert!(on.scrapes > 0, "the scraper must have reached /metrics");
    let json = emit_telemetry_json(&off, &on, quick);
    match std::fs::write("BENCH_telemetry.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_telemetry.json"),
        Err(e) => eprintln!("could not write BENCH_telemetry.json: {e}"),
    }
    vec![t, tt]
}
