//! Plain-text/markdown tables for the experiment harness.

use std::fmt::Write as _;
use std::time::Duration;

/// One experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (experiment id + claim).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n{n}");
        }
        out
    }
}

/// Human-readable duration (ms with 2 decimals, or µs below 1ms).
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 10_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Fits `time ≈ c·n^α` by least squares on log–log points; returns α.
pub fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return f64::NAN;
    }
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let lx = x.ln();
        let ly = y.max(1e-12).ln();
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("note");
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("note"));
    }

    #[test]
    fn exponent_fit() {
        // Perfect quadratic: α = 2.
        let pts: Vec<(f64, f64)> = (1..6).map(|i| (i as f64, (i * i) as f64)).collect();
        let a = fit_exponent(&pts);
        assert!((a - 2.0).abs() < 1e-9, "α = {a}");
        // Linear: α = 1.
        let pts: Vec<(f64, f64)> = (1..6).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((fit_exponent(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12µs");
        assert_eq!(fmt_duration(Duration::from_millis(2)), "2.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00s");
    }
}
