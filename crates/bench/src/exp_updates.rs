//! E14 — live updates: the per-update cost of delta maintenance versus
//! a from-scratch rebuild, on a grid of ~10⁵ elements.
//!
//! A [`MaintainedTerm`] keeps the per-element vectors of every basic
//! cl-term of a ground counting query. Each single-edge update is a
//! delta commit: epoch bump, COW relations, incremental Gaifman
//! maintenance, then recomputation of exactly the dirty balls (the
//! locality of change, Remark 6.3). The rebuild baseline pays what a
//! non-incremental engine would pay for the same freshness:
//! `DeltaStructure::rebuild_from_scratch()` plus a cold evaluation of
//! the whole term. Both paths must agree on the value at every step —
//! the experiment asserts it.
//!
//! Besides the markdown table, the experiment writes
//! `BENCH_updates.json` to the current directory: one record per
//! update (affected-ball size, both timings, speedup) plus a summary
//! with median/min speedups. On a bounded-degree grid the dirty ball
//! is O(1), so the speedup grows linearly with the order — the ISSUE's
//! acceptance bar (≥10× at 10⁵ elements) sits far below the measured
//! ratio.

use std::fmt::Write as _;
use std::time::Instant;

use foc_core::{EdgeUpdate, MaintainedTerm};
use foc_logic::build::{and, dist_le, eq, not, v};
use foc_logic::Symbol;
use foc_structures::gen::grid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::Table;

struct UpdateCell {
    op: String,
    affected: usize,
    delta_micros: u64,
    rebuild_micros: u64,
}

impl UpdateCell {
    fn speedup(&self) -> f64 {
        self.rebuild_micros as f64 / (self.delta_micros as f64).max(1.0)
    }
}

/// Draws a seeded stream of single-edge toggles: each update picks a
/// distinct pair and inserts the edge if absent, deletes it if present,
/// so every update is an effective commit (`changed > 0`).
fn gen_updates(m: &MaintainedTerm, count: usize, rng: &mut StdRng) -> Vec<EdgeUpdate> {
    let order = m.structure().order();
    let e = Symbol::new("E");
    let mut updates = Vec::with_capacity(count);
    // Track toggles locally so repeated picks of the same pair stay
    // effective without consulting the mutated structure mid-stream.
    let mut flipped: Vec<(u32, u32)> = Vec::new();
    while updates.len() < count {
        let u = rng.gen_range(0..order);
        let w = rng.gen_range(0..order);
        if u == w {
            continue;
        }
        let (a, b) = if u < w { (u, w) } else { (w, u) };
        let base = m.structure().holds(e, &[a, b]);
        let toggled = flipped.iter().filter(|&&p| p == (a, b)).count() % 2 == 1;
        let present = base ^ toggled;
        flipped.push((a, b));
        updates.push(if present {
            EdgeUpdate::Delete(a, b)
        } else {
            EdgeUpdate::Insert(a, b)
        });
    }
    updates
}

fn render(up: EdgeUpdate) -> String {
    match up {
        EdgeUpdate::Insert(u, v) => format!("+E({u},{v})"),
        EdgeUpdate::Delete(u, v) => format!("-E({u},{v})"),
    }
}

fn median_by<F: Fn(&UpdateCell) -> f64>(cells: &[UpdateCell], f: F) -> f64 {
    let mut vals: Vec<f64> = cells.iter().map(f).collect();
    vals.sort_by(|a, b| a.total_cmp(b));
    if vals.is_empty() {
        0.0
    } else {
        vals[vals.len() / 2]
    }
}

fn emit_json(cells: &[UpdateCell], order: u32, quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"experiment\": \"E14 live updates: delta maintenance vs rebuild\","
    );
    let _ = writeln!(out, "  \"engine\": \"local\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"order\": {order},");
    let _ = writeln!(out, "  \"query\": \"#(x,y). dist<=2(x,y) and not x=y\",");
    let _ = writeln!(
        out,
        "  \"note\": \"rebuild pays DeltaStructure::rebuild_from_scratch plus a cold full evaluation; delta pays one commit plus dirty-ball recomputation\","
    );
    let _ = writeln!(out, "  \"updates\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"op\": \"{}\",", c.op);
        let _ = writeln!(out, "      \"affected\": {},", c.affected);
        let _ = writeln!(out, "      \"delta_micros\": {},", c.delta_micros);
        let _ = writeln!(out, "      \"rebuild_micros\": {},", c.rebuild_micros);
        let _ = writeln!(out, "      \"speedup\": {:.3}", c.speedup());
        let _ = writeln!(out, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"summary\": {{");
    let _ = writeln!(out, "    \"updates\": {},", cells.len());
    let _ = writeln!(
        out,
        "    \"median_delta_micros\": {:.1},",
        median_by(cells, |c| c.delta_micros as f64)
    );
    let _ = writeln!(
        out,
        "    \"median_rebuild_micros\": {:.1},",
        median_by(cells, |c| c.rebuild_micros as f64)
    );
    let _ = writeln!(
        out,
        "    \"median_speedup\": {:.3},",
        median_by(cells, UpdateCell::speedup)
    );
    let _ = writeln!(
        out,
        "    \"min_speedup\": {:.3}",
        cells
            .iter()
            .map(UpdateCell::speedup)
            .fold(f64::INFINITY, f64::min)
    );
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// E14: delta-maintained updates vs from-scratch rebuilds. Returns the
/// markdown table and writes `BENCH_updates.json` to the working
/// directory.
pub fn e14(quick: bool) -> Vec<Table> {
    // 317² = 100489 ≥ 10⁵ elements for the acceptance run; the quick
    // cell keeps CI fast while preserving the shape of the experiment.
    let side: u32 = if quick { 40 } else { 317 };
    let n_updates: usize = if quick { 6 } else { 10 };
    let order = side * side;

    let x = v("e14x");
    let y = v("e14y");
    let body = and(dist_le(x, y, 2), not(eq(x, y)));
    let mut m =
        MaintainedTerm::new(grid(side, side), "E", &[x, y], &body).expect("decompose E14 query");

    let mut rng = StdRng::seed_from_u64(14);
    let updates = gen_updates(&m, n_updates, &mut rng);

    let mut t = Table::new(
        format!("E14: live updates on grid({side},{side}) — delta vs rebuild"),
        &[
            "update",
            "op",
            "affected",
            "delta µs",
            "rebuild µs",
            "speedup",
        ],
    );
    let mut cells = Vec::new();
    for (i, &up) in updates.iter().enumerate() {
        let t_delta = Instant::now();
        let incremental = m.apply(up).expect("delta update");
        let delta_micros = t_delta.elapsed().as_micros() as u64;
        assert!(
            m.last_affected() > 0,
            "toggle stream must produce effective commits"
        );

        let t_rebuild = Instant::now();
        let scratch = m.recompute_from_scratch().expect("rebuild oracle");
        let rebuild_micros = t_rebuild.elapsed().as_micros() as u64;
        assert_eq!(
            incremental, scratch,
            "delta maintenance diverged from rebuild at update {i} ({up:?})"
        );

        let cell = UpdateCell {
            op: render(up),
            affected: m.last_affected(),
            delta_micros,
            rebuild_micros,
        };
        t.row(vec![
            i.to_string(),
            cell.op.clone(),
            cell.affected.to_string(),
            cell.delta_micros.to_string(),
            cell.rebuild_micros.to_string(),
            format!("{:.1}x", cell.speedup()),
        ]);
        cells.push(cell);
    }

    let median_speedup = median_by(&cells, UpdateCell::speedup);
    if !quick {
        // The ISSUE's acceptance bar: ≥10× delta-vs-rebuild on
        // single-tuple updates at 10⁵ elements.
        assert!(
            median_speedup >= 10.0,
            "median speedup {median_speedup:.1}x below the 10x acceptance bar"
        );
    }

    let json = emit_json(&cells, order, quick);
    match std::fs::write("BENCH_updates.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_updates.json"),
        Err(e) => eprintln!("could not write BENCH_updates.json: {e}"),
    }
    vec![t]
}
