//! E3/E4 — the main theorem empirically: FOC1(P) model checking and
//! counting scale almost linearly on nowhere dense classes (Theorem 5.5,
//! Corollary 5.6), while the reference evaluation is polynomially worse.

use std::time::Instant;

use foc_core::{EngineKind, Evaluator};
use foc_logic::parse::{parse_formula, parse_term};
use foc_structures::gen::{bounded_degree, grid, random_tree};
use foc_structures::Structure;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{fit_exponent, fmt_duration, Table};

/// A named structure-class generator.
pub(crate) type ClassGen = Box<dyn Fn(u32) -> Structure>;

pub(crate) fn classes(rng_seed: u64) -> Vec<(&'static str, ClassGen)> {
    vec![
        ("random tree", {
            Box::new(move |n| {
                let mut rng = StdRng::seed_from_u64(rng_seed);
                random_tree(n, &mut rng)
            })
        }),
        (
            "grid",
            Box::new(|n| {
                let side = (n as f64).sqrt().round() as u32;
                grid(side, side)
            }),
        ),
        ("degree ≤ 3", {
            Box::new(move |n| {
                let mut rng = StdRng::seed_from_u64(rng_seed + 1);
                bounded_degree(n, 3, 3 * n as usize, &mut rng)
            })
        }),
    ]
}

/// E3: model checking a fixed FOC1(P) sentence while n grows.
pub fn e3(quick: bool) -> Vec<Table> {
    let sizes: &[u32] = if quick {
        &[500, 1_000, 2_000]
    } else {
        &[1_000, 2_000, 4_000, 8_000, 16_000]
    };
    let naive_cap = if quick { 1_000 } else { 4_000 };
    let cover_cap = if quick { 1_000 } else { 4_000 };
    // "The number of vertex pairs more than 2 apart is even, and some
    // vertex has ≥ 2 neighbours of degree 1" — cardinality conditions
    // whose naive evaluation is Θ(n²·ball).
    let sentence = parse_formula(
        "@even(#(x,y). !(dist(x,y) <= 2)) & exists x. #(y). (E(x,y) & #(z). E(y,z) = 1) >= 2",
    )
    .unwrap();
    let mut tables = Vec::new();
    for (class, make) in classes(33) {
        let mut t = Table::new(
            format!("E3 (Theorem 5.5): model checking on {class} — time vs n"),
            &["n", "‖A‖", "naive", "local", "cover", "agree"],
        );
        let mut local_points = Vec::new();
        let mut naive_points = Vec::new();
        for &n in sizes {
            let s = make(n);
            let mut cells = vec![s.order().to_string(), s.size().to_string()];
            let mut reference: Option<bool> = None;
            let mut agree = true;
            for kind in [EngineKind::Naive, EngineKind::Local, EngineKind::Cover] {
                let cap = match kind {
                    EngineKind::Naive => naive_cap,
                    EngineKind::Cover => cover_cap,
                    EngineKind::Local => u32::MAX,
                };
                if n > cap {
                    cells.push("—".into());
                    continue;
                }
                let ev = Evaluator::builder().kind(kind).build().unwrap();
                let t0 = Instant::now();
                let ans = ev.check_sentence(&s, &sentence).unwrap();
                let dt = t0.elapsed();
                match reference {
                    None => reference = Some(ans),
                    Some(r) => agree &= r == ans,
                }
                match kind {
                    EngineKind::Naive => naive_points.push((n as f64, dt.as_secs_f64())),
                    EngineKind::Local => local_points.push((n as f64, dt.as_secs_f64())),
                    EngineKind::Cover => {}
                }
                cells.push(fmt_duration(dt));
            }
            cells.push(if agree { "✓".into() } else { "✗".into() });
            t.row(cells);
        }
        t.note(format!(
            "fitted exponents (time ≈ c·n^α): naive α ≈ {:.2}, local α ≈ {:.2} \
             (the paper predicts α ≈ 1 + ε for the decomposed engines).",
            fit_exponent(&naive_points),
            fit_exponent(&local_points)
        ));
        tables.push(t);
    }
    tables
}

/// E4: the counting problem |φ(A)| (Corollary 5.6) — naive vs the
/// decomposed engines, including the inclusion–exclusion showcase
/// (counting non-edges).
pub fn e4(quick: bool) -> Vec<Table> {
    let sizes: &[u32] = if quick {
        &[500, 1_000, 2_000]
    } else {
        &[1_000, 2_000, 4_000, 8_000]
    };
    let naive_cap = if quick { 1_000 } else { 4_000 };
    let terms = [
        (
            "non-edges: #(x,y). (!E(x,y) ∧ x≠y)",
            "#(x,y). (!(E(x,y)) & !(x = y))",
        ),
        (
            "far pairs: #(x,y). dist(x,y) > 2",
            "#(x,y). !(dist(x,y) <= 2)",
        ),
        (
            "deg-1 pairs: #(x,y). (E(x,y) ∧ deg(y)=1)",
            "#(x,y). (E(x,y) & #(z). E(y,z) = 1)",
        ),
    ];
    let mut tables = Vec::new();
    for (label, src) in terms {
        let term = parse_term(src).unwrap();
        let mut t = Table::new(
            format!("E4 (Corollary 5.6): counting on random trees — {label}"),
            &["n", "value", "naive", "local", "speed-up", "agree"],
        );
        let mut rng = StdRng::seed_from_u64(44);
        for &n in sizes {
            let s = random_tree(n, &mut rng);
            let local = Evaluator::builder()
                .kind(EngineKind::Local)
                .build()
                .unwrap();
            let t0 = Instant::now();
            let lv = local.eval_ground(&s, &term).unwrap();
            let lt = t0.elapsed();
            if n > naive_cap {
                t.row(vec![
                    n.to_string(),
                    lv.to_string(),
                    "—".into(),
                    fmt_duration(lt),
                    "—".into(),
                    "—".into(),
                ]);
                continue;
            }
            let naive = Evaluator::builder()
                .kind(EngineKind::Naive)
                .build()
                .unwrap();
            let t0 = Instant::now();
            let nv = naive.eval_ground(&s, &term).unwrap();
            let nt = t0.elapsed();
            t.row(vec![
                n.to_string(),
                lv.to_string(),
                fmt_duration(nt),
                fmt_duration(lt),
                format!("{:.1}×", nt.as_secs_f64() / lt.as_secs_f64().max(1e-9)),
                if nv == lv { "✓".into() } else { "✗".into() },
            ]);
        }
        tables.push(t);
    }
    tables
}
