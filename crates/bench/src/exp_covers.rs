//! E6/E9 — the structural side of Sections 7–8: sparse neighbourhood
//! covers (Theorem 8.1) and the splitter game that characterises nowhere
//! dense classes.

use std::time::Instant;

use foc_covers::cover::cover_structure;
use foc_covers::splitter::{estimate_game_length, exact_game_value};
use foc_structures::gen::{bounded_degree, clique, gnm, grid, random_tree};
use foc_structures::Structure;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{fmt_duration, Table};

fn cover_classes(quick: bool) -> Vec<(&'static str, Vec<Structure>)> {
    let sizes: &[u32] = if quick {
        &[1_000, 4_000]
    } else {
        &[1_000, 4_000, 16_000]
    };
    let mut rng = StdRng::seed_from_u64(66);
    let mut out: Vec<(&'static str, Vec<Structure>)> = vec![
        (
            "random tree",
            sizes.iter().map(|&n| random_tree(n, &mut rng)).collect(),
        ),
        (
            "grid",
            sizes
                .iter()
                .map(|&n| {
                    let side = (n as f64).sqrt().round() as u32;
                    grid(side, side)
                })
                .collect(),
        ),
        (
            "degree ≤ 3",
            sizes
                .iter()
                .map(|&n| bounded_degree(n, 3, 3 * n as usize, &mut rng))
                .collect(),
        ),
        (
            "G(n, 2n)",
            sizes
                .iter()
                .map(|&n| gnm(n, 2 * n as usize, &mut rng))
                .collect(),
        ),
        // Somewhere dense control (kept small: quadratic size).
        (
            "clique (control)",
            vec![clique(64), clique(128), clique(256)],
        ),
    ];
    out.shrink_to_fit();
    out
}

/// E6: (r, 2r)-neighbourhood covers — validity, radius, degree, time.
pub fn e6(quick: bool) -> Vec<Table> {
    let mut tables = Vec::new();
    for r in [1u32, 2] {
        let mut t = Table::new(
            format!(
                "E6 (Theorem 8.1): ({r}, {})-neighbourhood covers — degree vs n",
                2 * r
            ),
            &[
                "class",
                "n",
                "clusters",
                "max degree",
                "measured radius",
                "valid",
                "build time",
            ],
        );
        for (class, structures) in cover_classes(quick) {
            for s in &structures {
                let g = s.gaifman();
                let t0 = Instant::now();
                let cov = cover_structure(s, r);
                let dt = t0.elapsed();
                let valid = cov.verify(g) && cov.max_radius(g) <= 2 * r;
                t.row(vec![
                    class.into(),
                    s.order().to_string(),
                    cov.clusters.len().to_string(),
                    cov.max_degree().to_string(),
                    cov.max_radius(g).to_string(),
                    if valid { "✓".into() } else { "✗".into() },
                    fmt_duration(dt),
                ]);
            }
        }
        t.note(
            "On the nowhere dense classes the cover degree stays bounded or grows \
             very slowly with n (the theorem's n^ε); on the clique control the \
             single cluster spans everything — the dichotomy the theory predicts.",
        );
        tables.push(t);
    }
    tables
}

/// E9: the splitter game — empirical λ̂(r) on sparse classes vs cliques,
/// with exact minimax values on small instances for calibration.
pub fn e9(quick: bool) -> Vec<Table> {
    let mut exact = Table::new(
        "E9a (Section 8): exact splitter-game values on small graphs",
        &["graph", "r", "optimal rounds"],
    );
    let mut rng = StdRng::seed_from_u64(99);
    let small: Vec<(String, Structure)> = vec![
        ("path P10".into(), foc_structures::gen::path(10)),
        ("star S9".into(), foc_structures::gen::star(9)),
        ("grid 3×4".into(), grid(3, 4)),
        ("random tree n=12".into(), random_tree(12, &mut rng)),
        ("clique K5".into(), clique(5)),
        ("clique K8".into(), clique(8)),
    ];
    for (name, s) in &small {
        for r in [1u32, 2] {
            let val = exact_game_value(s.gaifman(), r, 12)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "> 12".into());
            exact.row(vec![name.clone(), r.to_string(), val]);
        }
    }
    exact.note("On cliques the value is n (Splitter deletes one vertex per round); on trees and grids it is a small constant.");

    let mut emp = Table::new(
        "E9b: heuristic splitter-game length λ̂(r) as n grows",
        &["class", "n", "r", "rounds (heuristic)", "Splitter won"],
    );
    let sizes: &[u32] = if quick {
        &[100, 400]
    } else {
        &[100, 400, 1_600, 6_400]
    };
    let mut rng = StdRng::seed_from_u64(100);
    for &n in sizes {
        let structures: Vec<(&str, Structure)> = vec![
            ("random tree", random_tree(n, &mut rng)),
            ("grid", {
                let side = (n as f64).sqrt().round() as u32;
                grid(side, side)
            }),
            ("degree ≤ 3", bounded_degree(n, 3, 3 * n as usize, &mut rng)),
        ];
        for (class, s) in structures {
            for r in [1u32, 2] {
                let mut rng2 = StdRng::seed_from_u64(7);
                let o = estimate_game_length(s.gaifman(), r, 3, &mut rng2, 128);
                emp.row(vec![
                    class.into(),
                    n.to_string(),
                    r.to_string(),
                    o.rounds.to_string(),
                    if o.splitter_won {
                        "✓".into()
                    } else {
                        "✗ (cap)".into()
                    },
                ]);
            }
        }
    }
    // Clique control: rounds grow linearly.
    for n in [16u32, 32, 64] {
        let s = clique(n);
        let mut rng2 = StdRng::seed_from_u64(7);
        let o = estimate_game_length(s.gaifman(), 1, 1, &mut rng2, 2 * n as usize);
        emp.row(vec![
            "clique (control)".into(),
            n.to_string(),
            "1".into(),
            o.rounds.to_string(),
            if o.splitter_won {
                "✓".into()
            } else {
                "✗ (cap)".into()
            },
        ]);
    }
    emp.note(
        "λ̂(r) stays bounded as n grows on the sparse classes (they are nowhere \
         dense) and grows linearly on cliques (somewhere dense) — the paper's \
         Definition-by-splitter-game, observed.",
    );
    vec![exact, emp]
}
