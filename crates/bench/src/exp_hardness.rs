//! E1/E2 — the hardness reductions of Section 4 (Theorems 4.1 and 4.3):
//! correctness of the reductions end-to-end and measurement of the
//! polynomial blow-up.

use std::time::Instant;

use foc_eval::NaiveEvaluator;
use foc_hardness::{string_encoding, string_formula, tree_encoding, tree_formula};
use foc_logic::parse::parse_formula;
use foc_logic::Predicates;
use foc_structures::gen::gnm;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{fmt_duration, Table};

const SENTENCES: &[(&str, &str)] = &[
    ("edge", "exists x y. (E(x,y) & !(x = y))"),
    (
        "triangle",
        "exists x y z. (E(x,y) & E(y,z) & E(z,x) & !(x=y) & !(y=z) & !(x=z))",
    ),
    ("no-isolated", "forall x. exists y. E(x,y)"),
];

/// E1: FO on graphs → FOC({P=}) on trees.
pub fn e1(quick: bool) -> Vec<Table> {
    let sizes: &[u32] = if quick { &[6, 9] } else { &[6, 9, 12, 16] };
    let mut t = Table::new(
        "E1 (Theorem 4.1): FO on graphs ≼ FOC({P=}) on trees — G ⊨ φ ⟺ T_G ⊨ φ̂",
        &[
            "n(G)",
            "‖G‖",
            "‖T_G‖",
            "sentence",
            "‖φ‖",
            "‖φ̂‖",
            "G ⊨ φ",
            "T_G ⊨ φ̂",
            "agree",
            "t(G)",
            "t(T_G)",
        ],
    );
    let preds = Predicates::standard();
    let mut rng = StdRng::seed_from_u64(101);
    let mut all_agree = true;
    for &n in sizes {
        let g = gnm(n, (n as usize * 3) / 2, &mut rng);
        let enc = tree_encoding(&g);
        for (name, src) in SENTENCES {
            let phi = parse_formula(src).unwrap();
            let phi_hat = tree_formula(&phi);
            let t0 = Instant::now();
            let on_g = NaiveEvaluator::new(&g, &preds)
                .check_sentence(&phi)
                .unwrap();
            let tg = t0.elapsed();
            let t0 = Instant::now();
            let on_t = NaiveEvaluator::new(&enc.tree, &preds)
                .check_sentence(&phi_hat)
                .unwrap();
            let tt = t0.elapsed();
            all_agree &= on_g == on_t;
            t.row(vec![
                n.to_string(),
                g.size().to_string(),
                enc.tree.size().to_string(),
                name.to_string(),
                phi.size().to_string(),
                phi_hat.size().to_string(),
                on_g.to_string(),
                on_t.to_string(),
                if on_g == on_t {
                    "✓".into()
                } else {
                    "✗".into()
                },
                fmt_duration(tg),
                fmt_duration(tt),
            ]);
        }
    }
    t.note(if all_agree {
        "All reductions agree; ‖T_G‖ and ‖φ̂‖ grow polynomially, as Theorem 4.1 requires."
    } else {
        "MISMATCH — the reduction is broken!"
    });
    vec![t]
}

/// E2: FO on graphs → FOC({P=}) on strings over {a,b,c}.
pub fn e2(quick: bool) -> Vec<Table> {
    let sizes: &[u32] = if quick { &[5, 7] } else { &[5, 7, 9] };
    let mut t = Table::new(
        "E2 (Theorem 4.3): FO on graphs ≼ FOC({P=}) on strings — G ⊨ φ ⟺ S_G ⊨ φ̂",
        &[
            "n(G)",
            "‖G‖",
            "|S_G|",
            "‖S_G‖",
            "sentence",
            "agree",
            "t(S_G)",
        ],
    );
    let preds = Predicates::standard();
    let mut rng = StdRng::seed_from_u64(202);
    let mut all_agree = true;
    for &n in sizes {
        let g = gnm(n, (n as usize * 3) / 2, &mut rng);
        let enc = string_encoding(&g);
        for (name, src) in &SENTENCES[..2] {
            let phi = parse_formula(src).unwrap();
            let phi_hat = string_formula(&phi);
            let on_g = NaiveEvaluator::new(&g, &preds)
                .check_sentence(&phi)
                .unwrap();
            let t0 = Instant::now();
            let on_s = NaiveEvaluator::new(&enc.string, &preds)
                .check_sentence(&phi_hat)
                .unwrap();
            let ts = t0.elapsed();
            all_agree &= on_g == on_s;
            t.row(vec![
                n.to_string(),
                g.size().to_string(),
                enc.word.len().to_string(),
                enc.string.size().to_string(),
                name.to_string(),
                if on_g == on_s {
                    "✓".into()
                } else {
                    "✗".into()
                },
                fmt_duration(ts),
            ]);
        }
    }
    t.note(if all_agree {
        "All reductions agree. ‖S_G‖ is quadratic in the word length because of \
         the explicit linear order — strings are maximally non-sparse, which is \
         the point of Theorem 4.3."
    } else {
        "MISMATCH — the reduction is broken!"
    });
    vec![t]
}
