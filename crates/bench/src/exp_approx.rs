//! E16 — approximate counting: speedup versus epsilon, bound always kept.
//!
//! The `(ε, δ)` estimator promises two things at once: the estimate of a
//! ground counting term is within `⌈ε·n^k⌉` of the truth with
//! probability `1 − δ`, and the work to get it is a fixed Hoeffding
//! sample size `m = ⌈ln(2/δ)/(2ε²)⌉` — independent of how big the
//! assignment space is. This experiment measures both halves on the
//! dense generator families where exact enumeration hurts most: the
//! clique `K_n` (edge and triangle counts, assignment spaces `n²` and
//! `n³`) and a dense `G(n, m)` random graph.
//!
//! For each family and each ε in a decreasing-precision sweep the
//! harness runs the seeded estimator next to two exact engines (naive
//! and local) and records the speedup against the *faster* exact run.
//! Two properties are asserted on every run, quick or full:
//!
//! * **accuracy contract** — every estimate is within its claimed
//!   `error_bound` of the exact value (the seeded estimator either
//!   honours its bound deterministically or the run panics);
//! * **speedup contract** — at ε = 0.1 the estimator beats the fastest
//!   exact engine on at least one dense family.
//!
//! Besides the markdown table, the experiment writes
//! `BENCH_approx.json`: one record per (family, ε) cell plus a summary
//! with the contract outcomes.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use foc_core::{ApproxConfig, EngineKind, Evaluator};
use foc_logic::build::{and_all, atom, cnt, v};
use foc_logic::Term;
use foc_structures::gen::{clique, gnm};
use foc_structures::Structure;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::Table;

/// The ε sweep: tight to loose. 0.1 is the rung the speedup contract
/// is asserted at.
const EPSILONS: [f64; 3] = [0.05, 0.1, 0.2];

struct Family {
    name: &'static str,
    structure: Structure,
    query: Arc<Term>,
}

struct Cell {
    family: &'static str,
    order: u32,
    epsilon: f64,
    exact: i64,
    estimate: i64,
    error_bound: u64,
    samples: u64,
    exhaustive: bool,
    approx_us: u64,
    naive_us: u64,
    local_us: u64,
    speedup: f64,
}

fn edge_count() -> Arc<Term> {
    let x = v("e16x");
    let y = v("e16y");
    cnt([x, y], atom("E", [x, y]))
}

fn triangle_count() -> Arc<Term> {
    let x = v("e16x");
    let y = v("e16y");
    let z = v("e16z");
    cnt(
        [x, y, z],
        and_all([atom("E", [x, y]), atom("E", [y, z]), atom("E", [z, x])]),
    )
}

fn families(quick: bool) -> Vec<Family> {
    let (kn, gn, gm) = if quick {
        (80, 120, 3_000)
    } else {
        (240, 400, 20_000)
    };
    let mut rng = StdRng::seed_from_u64(16);
    vec![
        Family {
            name: "clique-edges",
            structure: clique(kn),
            query: edge_count(),
        },
        Family {
            name: "clique-triangles",
            structure: clique(kn),
            query: triangle_count(),
        },
        Family {
            name: "gnm-edges",
            structure: gnm(gn, gm, &mut rng),
            query: edge_count(),
        },
    ]
}

fn exact_micros(kind: EngineKind, a: &Structure, q: &Arc<Term>) -> (i64, u64) {
    let ev = Evaluator::builder()
        .kind(kind)
        .build()
        .expect("an unbudgeted exact engine is a valid configuration");
    let t0 = Instant::now();
    let value = ev.eval_ground(a, q).expect("exact run");
    (value, t0.elapsed().as_micros() as u64)
}

fn emit_json(cells: &[Cell], quick: bool, best_speedup_at_tenth: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"experiment\": \"E16 approximate counting: speedup vs epsilon\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"delta\": 0.05,");
    let _ = writeln!(
        out,
        "  \"note\": \"seeded Hoeffding estimator vs the faster of the naive/local exact engines; every estimate asserted within its claimed bound\","
    );
    let _ = writeln!(out, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"family\": \"{}\",", c.family);
        let _ = writeln!(out, "      \"order\": {},", c.order);
        let _ = writeln!(out, "      \"epsilon\": {},", c.epsilon);
        let _ = writeln!(out, "      \"exact\": {},", c.exact);
        let _ = writeln!(out, "      \"estimate\": {},", c.estimate);
        let _ = writeln!(out, "      \"error_bound\": {},", c.error_bound);
        let _ = writeln!(out, "      \"samples\": {},", c.samples);
        let _ = writeln!(out, "      \"exhaustive\": {},", c.exhaustive);
        let _ = writeln!(out, "      \"approx_micros\": {},", c.approx_us);
        let _ = writeln!(out, "      \"naive_micros\": {},", c.naive_us);
        let _ = writeln!(out, "      \"local_micros\": {},", c.local_us);
        let _ = writeln!(out, "      \"speedup\": {:.2},", c.speedup);
        let _ = writeln!(out, "      \"within_bound\": true");
        let _ = writeln!(out, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"summary\": {{");
    let _ = writeln!(out, "    \"cells\": {},", cells.len());
    let _ = writeln!(out, "    \"contract_violations\": 0,");
    let _ = writeln!(
        out,
        "    \"best_speedup_at_epsilon_0_1\": {best_speedup_at_tenth:.2}"
    );
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// E16: speedup-vs-ε of the seeded `(ε, δ)` estimator against exact
/// engines on dense families. Returns the markdown table and writes
/// `BENCH_approx.json` to the working directory. Panics if any
/// estimate strays past its claimed bound, or if at ε = 0.1 the
/// estimator fails to beat the fastest exact engine on every family.
pub fn e16(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E16: approximate counting speedup vs epsilon (delta = 0.05)".to_string(),
        &[
            "family",
            "epsilon",
            "exact",
            "estimate",
            "bound",
            "samples",
            "approx_us",
            "naive_us",
            "local_us",
            "speedup",
        ],
    );

    let mut cells = Vec::new();
    for fam in families(quick) {
        let order = fam.structure.universe().end;
        let (exact, naive_us) = exact_micros(EngineKind::Naive, &fam.structure, &fam.query);
        let (local_value, local_us) = exact_micros(EngineKind::Local, &fam.structure, &fam.query);
        assert_eq!(
            exact, local_value,
            "{}: the two exact engines disagree — fix that before benchmarking against them",
            fam.name
        );
        for epsilon in EPSILONS {
            let ev = Evaluator::builder()
                .kind(EngineKind::Naive)
                .approx(ApproxConfig::with_epsilon(epsilon))
                .build()
                .expect("an approx-configured engine is a valid configuration");
            let t0 = Instant::now();
            let v = ev
                .approx_count(&fam.structure, &fam.query)
                .expect("the estimator supports ground counting terms");
            let approx_us = (t0.elapsed().as_micros() as u64).max(1);
            // The accuracy contract, asserted on every run: the seeded
            // estimator honours its claimed bound or the bench fails.
            assert!(
                v.estimate.abs_diff(exact) <= v.error_bound,
                "{} at eps {epsilon}: estimate {} strays past ±{} of exact {exact}",
                fam.name,
                v.estimate,
                v.error_bound,
            );
            let best_exact_us = naive_us.min(local_us).max(1);
            let cell = Cell {
                family: fam.name,
                order,
                epsilon,
                exact,
                estimate: v.estimate,
                error_bound: v.error_bound,
                samples: v.samples,
                exhaustive: v.exhaustive,
                approx_us,
                naive_us,
                local_us,
                speedup: best_exact_us as f64 / approx_us as f64,
            };
            t.row(vec![
                cell.family.to_string(),
                format!("{epsilon}"),
                exact.to_string(),
                cell.estimate.to_string(),
                cell.error_bound.to_string(),
                cell.samples.to_string(),
                cell.approx_us.to_string(),
                cell.naive_us.to_string(),
                cell.local_us.to_string(),
                format!("{:.1}x", cell.speedup),
            ]);
            cells.push(cell);
        }
    }

    // The speedup contract: at ε = 0.1 sampling must beat the fastest
    // exact engine somewhere — that is the point of the fourth rung.
    let best_at_tenth = cells
        .iter()
        .filter(|c| (c.epsilon - 0.1).abs() < f64::EPSILON)
        .map(|c| c.speedup)
        .fold(0.0f64, f64::max);
    assert!(
        best_at_tenth > 1.0,
        "at eps 0.1 no dense family ran faster approximately ({best_at_tenth:.2}x best) — \
         the estimator lost to exact enumeration everywhere"
    );

    let json = emit_json(&cells, quick, best_at_tenth);
    match std::fs::write("BENCH_approx.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_approx.json"),
        Err(e) => eprintln!("could not write BENCH_approx.json: {e}"),
    }
    vec![t]
}
