//! E12 — the thread sweep of the parallel cluster scheduler: evaluating
//! cover-engine workloads at threads ∈ {1, 2, 4, 8}, verifying bit-identical
//! results against the single-threaded run, and recording wall-clock
//! speedups plus the engine's structured metrics.
//!
//! Besides the markdown table, this experiment writes `BENCH_parallel.json`
//! to the current directory: a machine-readable record with one entry per
//! (workload, thread-count) cell and a top-level `cpus` field so the
//! speedup numbers can be judged against the hardware they were measured
//! on (on a single-CPU host the sweep measures scheduling overhead, not
//! speedup — the JSON says so rather than hiding it).

use std::fmt::Write as _;
use std::time::Instant;

use foc_core::{EngineKind, Evaluator};
use foc_logic::parse::{parse_formula, parse_term};
use foc_structures::gen::{bounded_degree, grid, random_tree};
use foc_structures::Structure;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{fmt_duration, Table};

/// Thread counts swept by E12.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Workload {
    label: &'static str,
    structure: Structure,
    /// `Ok` = ground term, `Err` = sentence (sign carries the answer type).
    term: Option<std::sync::Arc<foc_logic::Term>>,
    sentence: Option<std::sync::Arc<foc_logic::Formula>>,
}

fn workloads(quick: bool) -> Vec<Workload> {
    let n: u32 = if quick { 2_000 } else { 8_000 };
    let side = (n as f64).sqrt().round() as u32;
    let mut rng = StdRng::seed_from_u64(12);
    let tree = random_tree(n, &mut rng);
    let mut rng = StdRng::seed_from_u64(13);
    let deg3 = bounded_degree(n, 3, 3 * n as usize, &mut rng);
    vec![
        Workload {
            label: "grid: far pairs",
            structure: grid(side, side),
            term: Some(parse_term("#(x,y). !(dist(x,y) <= 2)").unwrap()),
            sentence: None,
        },
        Workload {
            label: "tree: deg-1 pairs",
            structure: tree,
            term: Some(parse_term("#(x,y). (E(x,y) & #(z). E(y,z) = 1)").unwrap()),
            sentence: None,
        },
        Workload {
            label: "deg≤3: parity sentence",
            structure: deg3,
            term: None,
            sentence: Some(parse_formula("@even(#(x,y). !(dist(x,y) <= 2))").unwrap()),
        },
    ]
}

/// One measured cell of the sweep, including the session's metrics
/// snapshot (counters plus per-phase wall time) so the JSON record can
/// explain *where* a cell's time went, not just how long it took.
struct Cell {
    workload: &'static str,
    order: u32,
    threads: usize,
    secs: f64,
    speedup: f64,
    identical: bool,
    clusters: u64,
    covers_built: u64,
    removals: u64,
    peak_cluster: u32,
    cache_hits: u64,
    cache_misses: u64,
    balls: u64,
    materialize_micros: u64,
    decompose_micros: u64,
    cover_micros: u64,
    eval_micros: u64,
}

fn run_cell(w: &Workload, threads: usize, baseline: Option<&(i64, f64)>) -> (i64, Cell) {
    let ev = Evaluator::builder()
        .kind(EngineKind::Cover)
        .threads(threads)
        .build()
        .unwrap();
    let mut session = ev.session(&w.structure);
    let t0 = Instant::now();
    let value = match (&w.term, &w.sentence) {
        (Some(t), _) => session.eval_ground(t).unwrap(),
        (None, Some(f)) => session.check_sentence(f).unwrap() as i64,
        _ => unreachable!("workload has neither term nor sentence"),
    };
    let secs = t0.elapsed().as_secs_f64();
    let stats = session.stats();
    let cell = Cell {
        workload: w.label,
        order: w.structure.order(),
        threads,
        secs,
        speedup: baseline.map_or(1.0, |(_, base)| base / secs.max(1e-12)),
        identical: baseline.is_none_or(|(v, _)| *v == value),
        clusters: stats.clusters,
        covers_built: stats.covers_built,
        removals: stats.removals,
        peak_cluster: stats.peak_cluster,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        balls: stats.balls,
        materialize_micros: stats.phase.materialize.as_micros() as u64,
        decompose_micros: stats.phase.decompose.as_micros() as u64,
        cover_micros: stats.phase.cover.as_micros() as u64,
        eval_micros: stats.phase.eval.as_micros() as u64,
    };
    (value, cell)
}

fn emit_json(cells: &[Cell], quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"experiment\": \"E12 parallel cluster evaluation\","
    );
    let _ = writeln!(out, "  \"engine\": \"cover\",");
    let _ = writeln!(out, "  \"cpus\": {},", foc_parallel::available_threads());
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(
        out,
        "  \"note\": \"speedup is wall-clock vs threads=1 on this host; with cpus=1 the sweep can only measure scheduling overhead\","
    );
    let _ = writeln!(out, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(
            out,
            "      \"workload\": \"{}\",",
            c.workload.replace('"', "'")
        );
        let _ = writeln!(out, "      \"order\": {},", c.order);
        let _ = writeln!(out, "      \"threads\": {},", c.threads);
        let _ = writeln!(out, "      \"seconds\": {:.6},", c.secs);
        let _ = writeln!(out, "      \"speedup_vs_1\": {:.3},", c.speedup);
        let _ = writeln!(out, "      \"identical_to_sequential\": {},", c.identical);
        let _ = writeln!(out, "      \"clusters\": {},", c.clusters);
        let _ = writeln!(out, "      \"covers_built\": {},", c.covers_built);
        let _ = writeln!(out, "      \"removals\": {},", c.removals);
        let _ = writeln!(out, "      \"peak_cluster\": {},", c.peak_cluster);
        let _ = writeln!(out, "      \"cache_hits\": {},", c.cache_hits);
        let _ = writeln!(out, "      \"cache_misses\": {},", c.cache_misses);
        let _ = writeln!(out, "      \"balls\": {},", c.balls);
        let _ = writeln!(out, "      \"phases_micros\": {{");
        let _ = writeln!(out, "        \"materialize\": {},", c.materialize_micros);
        let _ = writeln!(out, "        \"decompose\": {},", c.decompose_micros);
        let _ = writeln!(out, "        \"cover\": {},", c.cover_micros);
        let _ = writeln!(out, "        \"eval\": {}", c.eval_micros);
        let _ = writeln!(out, "      }}");
        let _ = writeln!(out, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// E12: the thread sweep. Returns the markdown table and writes
/// `BENCH_parallel.json` beside the working directory.
pub fn e12(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "E12: parallel cluster evaluation (Cover engine) — thread sweep",
        &[
            "workload",
            "n",
            "threads",
            "time",
            "speedup",
            "identical",
            "clusters",
            "peak",
            "cache h/m",
        ],
    );
    let mut cells = Vec::new();
    for w in workloads(quick) {
        let mut baseline: Option<(i64, f64)> = None;
        for threads in THREADS {
            let (value, cell) = run_cell(&w, threads, baseline.as_ref());
            t.row(vec![
                w.label.into(),
                cell.order.to_string(),
                threads.to_string(),
                fmt_duration(std::time::Duration::from_secs_f64(cell.secs)),
                format!("{:.2}×", cell.speedup),
                if cell.identical {
                    "✓".into()
                } else {
                    "✗".into()
                },
                cell.clusters.to_string(),
                cell.peak_cluster.to_string(),
                format!("{}/{}", cell.cache_hits, cell.cache_misses),
            ]);
            if baseline.is_none() {
                baseline = Some((value, cell.secs));
            }
            cells.push(cell);
        }
    }
    assert!(
        cells.iter().all(|c| c.identical),
        "parallel results must be bit-identical"
    );
    let json = emit_json(&cells, quick);
    match std::fs::write("BENCH_parallel.json", &json) {
        Ok(()) => t.note("wrote BENCH_parallel.json".to_string()),
        Err(e) => t.note(format!("could not write BENCH_parallel.json: {e}")),
    }
    t.note(format!(
        "host has {} hardware thread(s); speedups are wall-clock vs threads=1 on this host.",
        foc_parallel::available_threads()
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_well_formed() {
        let cells = vec![Cell {
            workload: "w",
            order: 10,
            threads: 2,
            secs: 0.5,
            speedup: 1.9,
            identical: true,
            clusters: 7,
            covers_built: 2,
            removals: 4,
            peak_cluster: 3,
            cache_hits: 1,
            cache_misses: 2,
            balls: 11,
            materialize_micros: 100,
            decompose_micros: 20,
            cover_micros: 30,
            eval_micros: 80,
        }];
        let json = emit_json(&cells, true);
        assert!(json.contains("\"cpus\""));
        assert!(json.contains("\"speedup_vs_1\": 1.900"));
        assert!(json.contains("\"identical_to_sequential\": true"));
        assert!(json.contains("\"phases_micros\""));
        assert!(json.contains("\"balls\": 11"));
        // Balanced braces/brackets — cheap well-formedness proxy without a
        // JSON parser in the tree.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn sweep_runs_and_agrees_on_tiny_inputs() {
        let w = Workload {
            label: "tiny grid",
            structure: grid(8, 8),
            term: Some(parse_term("#(x,y). !(dist(x,y) <= 2)").unwrap()),
            sentence: None,
        };
        let (v1, c1) = run_cell(&w, 1, None);
        let (v2, c2) = run_cell(&w, 4, Some(&(v1, c1.secs)));
        assert_eq!(v1, v2);
        assert!(c2.identical);
        assert!(c2.clusters > 0);
    }
}
