//! Criterion micro-benchmarks for experiment E7: the GROUP BY COUNT
//! query of Example 5.3 on the Customer/Order database.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foc_core::sql::customers_per_country;
use foc_core::{EngineKind, Evaluator};
use foc_structures::gen::{sql_database, SqlDbParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sql(c: &mut Criterion) {
    let q = customers_per_country(true);
    let mut group = c.benchmark_group("sql_group_by_country");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    for customers in [200u32, 1_000] {
        let db = sql_database(
            SqlDbParams {
                customers,
                countries: (customers / 40).max(3),
                cities: (customers / 20).max(5),
                avg_orders: 2.0,
            },
            &mut rng,
        );
        for kind in [EngineKind::Naive, EngineKind::Local] {
            let ev = Evaluator::builder().kind(kind).build().unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), customers),
                &db.structure,
                |b, s| b.iter(|| ev.query(s, &q).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sql);
criterion_main!(benches);
