//! Criterion micro-benchmarks for experiment E3: FOC1(P) model checking
//! per engine on growing random trees, plus the E12 thread sweep of the
//! parallel Cover engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foc_core::{EngineKind, Evaluator};
use foc_logic::parse::parse_formula;
use foc_structures::gen::random_tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_model_checking(c: &mut Criterion) {
    let sentence = parse_formula("exists x. #(y). (E(x,y) & #(z). E(y,z) = 1) >= 2").unwrap();
    let mut group = c.benchmark_group("model_checking_random_tree");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    for n in [512u32, 2048, 8192] {
        let s = random_tree(n, &mut rng);
        for kind in [EngineKind::Naive, EngineKind::Local] {
            let ev = Evaluator::builder().kind(kind).build().unwrap();
            group.bench_with_input(BenchmarkId::new(format!("{kind:?}"), n), &s, |b, s| {
                b.iter(|| ev.check_sentence(s, &sentence).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_thread_sweep(c: &mut Criterion) {
    // The E12 sweep as a criterion group: the Cover engine on a fixed
    // grid, threads ∈ {1, 2, 4, 8}.
    let sentence = parse_formula("@even(#(x,y). !(dist(x,y) <= 2))").unwrap();
    let s = foc_structures::gen::grid(48, 48);
    let mut group = c.benchmark_group("cover_thread_sweep_grid48");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let ev = Evaluator::builder()
            .kind(EngineKind::Cover)
            .threads(threads)
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("threads", threads), &s, |b, s| {
            b.iter(|| ev.check_sentence(s, &sentence).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_checking, bench_thread_sweep);
criterion_main!(benches);
