//! Criterion micro-benchmarks for experiment E6: neighbourhood-cover
//! construction (least-centre rule vs the trivial per-element cover).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foc_covers::cover::{build_cover, trivial_cover};
use foc_structures::gen::{grid, random_tree};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_covers(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbourhood_cover");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    for n in [1_000u32, 4_000, 16_000] {
        let t = random_tree(n, &mut rng);
        let g = t.gaifman().clone();
        group.bench_with_input(BenchmarkId::new("least_centre/tree", n), &g, |b, g| {
            b.iter(|| build_cover(g, 2))
        });
        group.bench_with_input(BenchmarkId::new("trivial/tree", n), &g, |b, g| {
            b.iter(|| trivial_cover(g, 2))
        });
        let side = (n as f64).sqrt().round() as u32;
        let gr = grid(side, side).gaifman().clone();
        group.bench_with_input(BenchmarkId::new("least_centre/grid", n), &gr, |b, g| {
            b.iter(|| build_cover(g, 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_covers);
criterion_main!(benches);
