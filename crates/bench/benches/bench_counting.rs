//! Criterion micro-benchmarks for experiment E4: the counting problem
//! (Corollary 5.6) — the inclusion–exclusion showcase (non-edges) and a
//! guarded count, naive vs decomposed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foc_core::{EngineKind, Evaluator};
use foc_logic::parse::parse_term;
use foc_structures::gen::grid;

fn bench_counting(c: &mut Criterion) {
    let far = parse_term("#(x,y). !(dist(x,y) <= 2)").unwrap();
    let guarded = parse_term("#(x,y). (E(x,y) & #(z). E(y,z) = 3)").unwrap();
    let mut group = c.benchmark_group("counting_grid");
    group.sample_size(10);
    for side in [16u32, 32, 64] {
        let s = grid(side, side);
        let n = side * side;
        for (name, term) in [("far_pairs", &far), ("guarded", &guarded)] {
            for kind in [EngineKind::Naive, EngineKind::Local] {
                if kind == EngineKind::Naive && name == "far_pairs" && n > 1100 {
                    continue; // quadratic; keep the run bounded
                }
                let ev = Evaluator::builder().kind(kind).build().unwrap();
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}/{kind:?}"), n),
                    &s,
                    |b, s| b.iter(|| ev.eval_ground(s, term).unwrap()),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_counting);
criterion_main!(benches);
