//! Observability overhead check: the same cover-engine workload (the
//! E12 grid query) run with tracing fully disabled versus with an
//! in-memory sink attached. With no sink the span API reduces to a
//! branch per call site, so the two curves should be indistinguishable;
//! this bench is the acceptance gate for "no measurable regression with
//! tracing disabled".

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use foc_core::{EngineKind, Evaluator};
use foc_logic::parse::parse_term;
use foc_obs::{MemorySink, Sink};
use foc_structures::gen::grid;

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("observability_overhead");
    group.sample_size(10);
    let g = grid(40, 40);
    let term = parse_term("#(x,y). !(dist(x,y) <= 2)").unwrap();

    let plain = Evaluator::builder()
        .kind(EngineKind::Cover)
        .build()
        .unwrap();
    group.bench_function("cover/disabled", |b| {
        b.iter(|| plain.session(&g).eval_ground(&term).unwrap())
    });

    group.bench_function("cover/memory_sink", |b| {
        b.iter(|| {
            // A fresh sink per iteration so the measured cost includes
            // span recording but not unbounded accumulation.
            let sink = MemorySink::shared();
            let traced = Evaluator::builder()
                .kind(EngineKind::Cover)
                .sink(sink as Arc<dyn Sink>)
                .build()
                .unwrap();
            traced.session(&g).eval_ground(&term).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
