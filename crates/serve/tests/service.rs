//! End-to-end robustness tests for the service mode (ISSUE 5,
//! satellite 4 and the acceptance criterion): misbehaving queries are
//! contained as structured error frames while concurrent well-behaved
//! clients get correct answers; drain is graceful, bounded, and leaks
//! no threads; admission is shed-not-block.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use foc_core::{EngineKind, Evaluator};
use foc_logic::parse::parse_term;
use foc_obs::names;
use foc_serve::{start, ServerConfig};
use foc_structures::gen::{clique, path};

/// A blocking JSON-lines client for the tests.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Client {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) => panic!("server closed the stream while a frame was expected"),
                Ok(_) => return line.trim().to_string(),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => panic!("recv: {e}"),
            }
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn field<'a>(frame: &'a str, key: &str) -> Option<&'a str> {
    // Good enough for the fixed frames the server emits: find
    // `"key":` and read the raw token after it.
    let pat = format!("\"{key}\":");
    let start = frame.find(&pat)? + pat.len();
    let rest = &frame[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

/// The acceptance E2E: a panicking query, a deadline-exceeding query,
/// and a memory-watermark trip are each answered with structured error
/// frames, while a concurrent well-behaved client gets answers that
/// match the naive reference evaluator. Then the server drains cleanly.
#[test]
fn misbehaving_queries_are_contained_while_good_clients_succeed() {
    let structure = path(12);
    let handle = start(
        structure.clone(),
        ServerConfig {
            max_inflight: 4,
            queue: 8,
            engine: EngineKind::Naive,
            fault_panic_element: Some(3),
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = handle.addr();

    // The independent reference answer for the well-behaved query.
    let reference = Evaluator::builder()
        .kind(EngineKind::Naive)
        .build()
        .expect("reference evaluator");
    let good_query = "#(x,y). E(x,y)";
    let expected = reference
        .eval_ground(&structure, &parse_term(good_query).expect("parse"))
        .expect("reference eval");

    let good = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        for i in 0..10 {
            let frame = c.roundtrip(&format!(
                r##"{{"id":"good-{i}","mode":"eval","query":"{good_query}","engine":"naive"}}"##
            ));
            assert_eq!(field(&frame, "type"), Some("result"), "frame: {frame}");
            assert_eq!(
                field(&frame, "value"),
                Some(expected.to_string().as_str()),
                "frame: {frame}"
            );
        }
    });
    let panicker = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        // The local engine's ball enumeration hits the injected fault
        // at element 3; the same query under the naive engine (the
        // well-behaved client's) never reaches the injection point.
        let frame = c.roundtrip(
            r##"{"id":"boom","mode":"eval","query":"#(x,y). E(x,y)","engine":"local"}"##,
        );
        assert_eq!(field(&frame, "type"), Some("error"), "frame: {frame}");
        assert_eq!(field(&frame, "class"), Some("panic"), "frame: {frame}");
        assert!(frame.contains("injected fault"), "frame: {frame}");
    });
    let deadliner = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        let frame = c.roundtrip(
            r##"{"id":"late","mode":"eval","query":"#(x,y). E(x,y)","timeout_ms":0,"engine":"naive"}"##,
        );
        assert_eq!(field(&frame, "type"), Some("error"), "frame: {frame}");
        assert_eq!(
            field(&frame, "class"),
            Some("interrupted"),
            "frame: {frame}"
        );
        assert_eq!(field(&frame, "reason"), Some("deadline"), "frame: {frame}");
    });
    let memory = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        // The server-wide byte account already holds the structure, so
        // a 1-byte request cap trips on the first guard poll.
        let frame = c.roundtrip(
            r##"{"id":"oom","mode":"eval","query":"#(x,y). E(x,y)","mem_limit_bytes":1,"engine":"naive"}"##,
        );
        assert_eq!(field(&frame, "type"), Some("error"), "frame: {frame}");
        assert_eq!(
            field(&frame, "class"),
            Some("interrupted"),
            "frame: {frame}"
        );
        assert_eq!(
            field(&frame, "reason"),
            Some("memory limit"),
            "frame: {frame}"
        );
    });

    good.join().expect("good client");
    panicker.join().expect("panic client");
    deadliner.join().expect("deadline client");
    memory.join().expect("memory client");

    let report = handle.drain();
    assert_eq!(report.interrupted, 0, "drain was clean");
    assert_eq!(report.connections_joined, 4);
    let snap = &report.final_metrics;
    assert!(snap.counter(names::SERVE_PANICS) >= 1);
    assert!(snap.counter(names::SERVE_INTERRUPTED) >= 2);
    assert_eq!(snap.counter(names::SERVE_REQUESTS), 13);
}

/// 32 concurrent clients all get served; drain then completes, notifies
/// every idle stream with a `drained` frame, joins every connection
/// thread, and interrupts nothing.
#[test]
fn graceful_drain_completes_under_32_concurrent_clients() {
    let handle = start(
        path(8),
        ServerConfig {
            max_inflight: 4,
            queue: 32,
            engine: EngineKind::Naive,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = handle.addr();
    let served = Arc::new(AtomicUsize::new(0));

    let clients: Vec<_> = (0..32)
        .map(|i| {
            let served = served.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let frame = c.roundtrip(&format!(
                    r##"{{"id":"c{i}","mode":"check","query":"exists x. E(x,x)"}}"##
                ));
                assert_eq!(field(&frame, "type"), Some("result"), "frame: {frame}");
                assert_eq!(field(&frame, "value"), Some("false"), "frame: {frame}");
                served.fetch_add(1, Ordering::SeqCst);
                // Keep the connection open: drain must notify it with a
                // `drained` frame instead of leaving it hanging.
                let bye = c.recv();
                assert_eq!(field(&bye, "type"), Some("drained"), "frame: {bye}");
            })
        })
        .collect();

    // Wait until every client has its answer, then drain.
    while served.load(Ordering::SeqCst) < 32 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = handle.drain();
    for c in clients {
        c.join().expect("client thread");
    }
    assert_eq!(report.interrupted, 0);
    assert_eq!(report.connections_joined, 32, "no connection thread leaks");
    assert_eq!(report.final_metrics.counter(names::SERVE_REQUESTS), 32);
}

/// Admission under overload: with one in-flight slot and no queue, a
/// long-running query makes every concurrent request shed *immediately*
/// — the bounded queue never blocks the accept loop or the clients.
/// Drain then interrupts the straggler at the drain deadline (the
/// exit-code-3 path) and sheds brand-new connections with a shed frame.
#[test]
fn overload_sheds_and_drain_interrupts_stragglers() {
    let handle = start(
        clique(40),
        ServerConfig {
            max_inflight: 1,
            queue: 0,
            engine: EngineKind::Naive,
            max_timeout: Duration::from_secs(120),
            drain_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = handle.addr();

    // A deliberately huge naive evaluation (40^4 assignments) that can
    // only end by cancellation.
    let mut slow = Client::connect(addr);
    slow.send(
        r##"{"id":"slow","mode":"eval","query":"#(x1,x2,x3,x4). (E(x1,x2) & E(x2,x3) & E(x3,x4))"}"##,
    );
    std::thread::sleep(Duration::from_millis(150));

    // While it holds the only slot: everyone else is shed, fast.
    for i in 0..3 {
        let mut c = Client::connect(addr);
        let t0 = std::time::Instant::now();
        let frame = c.roundtrip(&format!(
            r##"{{"id":"shed-{i}","mode":"check","query":"exists x. E(x,x)"}}"##
        ));
        assert_eq!(field(&frame, "type"), Some("shed"), "frame: {frame}");
        // The hint is derived (queue depth × latency p99, floored at
        // the configured base, jittered ±12.5%); with no latency
        // history yet it stays near the 50 ms base.
        let hint: u64 = field(&frame, "retry_after_ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("numeric retry_after_ms: {frame}"));
        assert!(
            (40..=62).contains(&hint),
            "hint {hint} should be near the 50 ms base: {frame}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "shedding must not block behind the in-flight request"
        );
    }

    // Drain from another thread; it must first wait out the 300 ms
    // drain deadline, then cancel the slow query.
    let drainer = std::thread::spawn(move || handle.drain());
    std::thread::sleep(Duration::from_millis(100));
    // New connections during drain are refused with a shed frame.
    let mut late = Client::connect(addr);
    let frame = late.recv();
    assert_eq!(field(&frame, "type"), Some("shed"), "frame: {frame}");

    let report = drainer.join().expect("drain thread");
    assert_eq!(report.interrupted, 1, "the slow query was interrupted");
    assert!(report.final_metrics.counter(names::SERVE_SHED) >= 4);

    // The straggler's client sees a structured cancellation frame.
    let frame = slow.recv();
    assert_eq!(field(&frame, "type"), Some("error"), "frame: {frame}");
    assert_eq!(
        field(&frame, "class"),
        Some("interrupted"),
        "frame: {frame}"
    );
    assert_eq!(
        field(&frame, "reason"),
        Some("cancellation"),
        "frame: {frame}"
    );
}

/// The memory watermark walks the documented escalation ladder: shrink
/// the shared cache, stop caching, then shed — and requests are still
/// answered on the way down.
#[test]
fn memory_watermark_walks_shrink_then_cache_off_then_shed() {
    let handle = start(
        path(8),
        ServerConfig {
            engine: EngineKind::Naive,
            // The structure's resident bytes alone exceed a zero limit,
            // so every admission observes sustained pressure.
            mem_limit: Some(0),
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let mut c = Client::connect(handle.addr());

    let q = |i: usize| format!(r##"{{"id":"p{i}","mode":"check","query":"exists x. E(x,x)"}}"##);
    // Step 1: cache shrunk to half — still served.
    let f1 = c.roundtrip(&q(1));
    assert_eq!(field(&f1, "type"), Some("result"), "frame: {f1}");
    // Step 2: cache evicted and disabled — still served.
    let f2 = c.roundtrip(&q(2));
    assert_eq!(field(&f2, "type"), Some("result"), "frame: {f2}");
    // Step 3: anytime forced — still served, answer carries a
    // confidence tag (a degraded answer beats a refusal).
    let f3 = c.roundtrip(&q(3));
    assert_eq!(field(&f3, "type"), Some("result"), "frame: {f3}");
    assert!(
        field(&f3, "confidence").is_some(),
        "forced-anytime answers are confidence-tagged: {f3}"
    );
    // Step 4 and beyond: shed until the meter drops (it never does).
    let f4 = c.roundtrip(&q(4));
    assert_eq!(field(&f4, "type"), Some("shed"), "frame: {f4}");
    let f5 = c.roundtrip(&q(5));
    assert_eq!(field(&f5, "type"), Some("shed"), "frame: {f5}");

    let report = handle.drain();
    let snap = &report.final_metrics;
    assert_eq!(snap.counter(names::SERVE_PRESSURE_STEPS), 4);
    assert_eq!(snap.counter(names::SERVE_REQUESTS), 3);
    assert_eq!(snap.counter(names::SERVE_SHED), 2);
    assert_eq!(snap.counter(names::SERVE_ANYTIME), 1);
}

/// ISSUE 9 satellite: under escalating memory pressure a counting eval
/// degrades in ladder order — exact answers first, then (on the
/// forced-anytime rung, with a budget too tight for the exact rung) an
/// ε-bounded approximate answer, and only then shedding — and every
/// approximate answer carries a finite error bound that contains the
/// true count.
#[test]
fn pressure_degrades_exact_to_approximate_to_shed() {
    // Dense enough that the assignment space (3600) dwarfs the
    // Hoeffding sample size (185 at ε=0.1), so the approx rung
    // genuinely samples — and the exhaustive pass overruns the rung-3
    // fuel slice below.
    let n = 60u32;
    let structure = clique(n);
    let exact = i64::from(n) * i64::from(n - 1);
    let handle = start(
        structure,
        ServerConfig {
            engine: EngineKind::Naive,
            // The structure's resident bytes alone exceed a zero limit,
            // so every admission walks the escalation ladder one rung.
            mem_limit: Some(0),
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let mut c = Client::connect(handle.addr());

    let q = |i: usize, fuel: &str| {
        format!(r##"{{"id":"p{i}","mode":"eval","query":"#(x,y). E(x,y)"{fuel}}}"##)
    };
    // Rungs 1-2 (cache shrink, cache off): unbudgeted requests are
    // still answered exactly.
    for i in 1..=2 {
        let f = c.roundtrip(&q(i, ""));
        assert_eq!(field(&f, "type"), Some("result"), "frame: {f}");
        assert_eq!(
            field(&f, "value"),
            Some(exact.to_string().as_str()),
            "rung {i} answers exactly: {f}"
        );
    }
    // Rung 3 (anytime forced): a fuel allowance with room for the
    // sample and approx passes but not the exhaustive one leaves the
    // ε-estimate as the best banked answer — served, not shed.
    let f3 = c.roundtrip(&q(3, r#","fuel":4000"#));
    assert_eq!(field(&f3, "type"), Some("result"), "frame: {f3}");
    assert_eq!(
        field(&f3, "confidence"),
        Some("approx"),
        "the forced-anytime rung banks the ε-estimate: {f3}"
    );
    assert_eq!(field(&f3, "approx"), Some("true"), "frame: {f3}");
    let bound: i64 = field(&f3, "error_bound")
        .expect("approx frames carry their bound")
        .parse()
        .expect("finite integer bound");
    let value: i64 = field(&f3, "value").unwrap().parse().unwrap();
    assert!(bound > 0, "sampled estimates carry a finite bound: {f3}");
    assert!(
        (value - exact).abs() <= bound,
        "estimate {value} strays past ±{bound} of {exact}: {f3}"
    );
    // Rung 4 and beyond: shed until the meter drops (it never does).
    let f4 = c.roundtrip(&q(4, ""));
    assert_eq!(field(&f4, "type"), Some("shed"), "frame: {f4}");

    let report = handle.drain();
    let snap = &report.final_metrics;
    assert_eq!(snap.counter(names::SERVE_PRESSURE_STEPS), 4);
    assert_eq!(snap.counter(names::SERVE_ANYTIME), 1);
    assert!(
        snap.counter("engine.approx.runs") >= 1,
        "the approx rung records its runs"
    );
}

/// ISSUE 9 tentpole: `"approx":true` eval requests (proto 2) answer
/// with an ε-bounded estimate flagged on the wire, the bound scales
/// with the requested `epsilon_milli`, and a space small enough to
/// enumerate falls through to the exact answer.
#[test]
fn approx_eval_requests_get_bounded_estimates() {
    let n = 40u32;
    let exact = i64::from(n) * i64::from(n - 1);
    let handle = start(
        clique(n),
        ServerConfig {
            engine: EngineKind::Naive,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let mut c = Client::connect(handle.addr());

    let ask = |c: &mut Client, id: &str, milli: u64| {
        c.roundtrip(&format!(
            r##"{{"proto":2,"id":"{id}","mode":"eval","query":"#(x,y). E(x,y)","approx":true,"epsilon_milli":{milli}}}"##
        ))
    };
    let mut bound_at = |milli: u64| -> i64 {
        let f = ask(&mut c, &format!("a{milli}"), milli);
        assert_eq!(field(&f, "type"), Some("result"), "frame: {f}");
        assert_eq!(field(&f, "confidence"), Some("approx"), "frame: {f}");
        assert_eq!(field(&f, "approx"), Some("true"), "frame: {f}");
        let bound: i64 = field(&f, "error_bound").unwrap().parse().unwrap();
        let value: i64 = field(&f, "value").unwrap().parse().unwrap();
        assert!(
            (value - exact).abs() <= bound,
            "estimate {value} strays past ±{bound} of {exact}: {f}"
        );
        bound
    };
    // ε=0.1 → bound ⌈0.1·1600⌉ = 160; ε=0.05 halves it.
    let loose = bound_at(100);
    let tight = bound_at(50);
    assert_eq!(loose, 160);
    assert_eq!(tight, 80);

    // A single-variable count (40 assignments < 185 samples) is
    // enumerated outright: the "estimate" is the true count, tagged
    // exact.
    let f = c.roundtrip(
        r##"{"proto":2,"id":"tiny","mode":"eval","query":"#(x). x = x","approx":true}"##,
    );
    assert_eq!(field(&f, "confidence"), Some("exact"), "frame: {f}");
    assert_eq!(field(&f, "value"), Some("40"), "frame: {f}");
    handle.drain();
}

/// Malformed lines get structured `bad-request` frames (with the id
/// echoed when the JSON itself was readable) and never take down the
/// connection.
#[test]
fn bad_requests_get_structured_errors_and_the_connection_survives() {
    let handle = start(path(4), ServerConfig::default()).expect("start");
    let mut c = Client::connect(handle.addr());

    let f = c.roundtrip("this is not json");
    assert_eq!(field(&f, "type"), Some("error"), "frame: {f}");
    assert_eq!(field(&f, "class"), Some("bad-request"), "frame: {f}");
    assert_eq!(field(&f, "id"), Some("-"), "frame: {f}");

    let f = c.roundtrip(r#"{"id":"q1","mode":"warp","query":"true"}"#);
    assert_eq!(field(&f, "class"), Some("bad-request"), "frame: {f}");
    assert_eq!(field(&f, "id"), Some("q1"), "frame: {f}");

    let f = c.roundtrip(r#"{"id":"q2","mode":"check","query":"exists x. ("}"#);
    assert_eq!(field(&f, "class"), Some("parse"), "frame: {f}");

    // Still alive and correct afterwards.
    let f = c.roundtrip(r#"{"id":"q3","mode":"check","query":"exists x. E(x,x)"}"#);
    assert_eq!(field(&f, "type"), Some("result"), "frame: {f}");

    let report = handle.drain();
    assert_eq!(report.interrupted, 0);
}

/// Live updates (ISSUE 6): a writer streams batch mutations while
/// concurrent readers query. Every reader response carries the epoch it
/// evaluated under, and its value must equal a from-scratch rebuild of
/// the structure at exactly that epoch — snapshot consistency under
/// concurrent commits.
#[test]
fn concurrent_updates_are_snapshot_consistent_with_rebuilds() {
    use foc_structures::{DeltaStructure, TupleOp};

    let structure = path(16);
    // The deterministic mutation schedule: each batch toggles one
    // symmetric edge and is guaranteed effective, so batch i commits
    // epoch i+1.
    let toggles: Vec<(u32, u32, bool)> = vec![
        (0, 8, true),
        (1, 9, true),
        (2, 10, true),
        (3, 4, false),
        (1, 9, false),
        (5, 13, true),
        (7, 8, false),
        (3, 4, true),
        (6, 14, true),
        (0, 8, false),
    ];

    // Expected value per epoch, via an independent from-scratch rebuild
    // at every epoch (the oracle the acceptance criterion asks for).
    let query = "#(x,y). E(x,y)";
    let term = parse_term(query).expect("parse");
    let reference = Evaluator::builder()
        .kind(EngineKind::Naive)
        .build()
        .expect("reference");
    let mut mirror = DeltaStructure::new(structure.clone());
    let mut expected = vec![reference
        .eval_ground(&mirror.rebuild_from_scratch(), &term)
        .expect("epoch 0")];
    for &(u, v, insert) in &toggles {
        let mk = if insert {
            TupleOp::insert
        } else {
            TupleOp::delete
        };
        let info = mirror
            .apply(&[mk("E", &[u, v]), mk("E", &[v, u])])
            .expect("mirror commit");
        assert_eq!(info.epoch as usize, expected.len(), "every batch commits");
        expected.push(
            reference
                .eval_ground(&mirror.rebuild_from_scratch(), &term)
                .expect("rebuild eval"),
        );
    }

    let handle = start(
        structure,
        ServerConfig {
            max_inflight: 4,
            queue: 32,
            engine: EngineKind::Local,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = handle.addr();

    let writer = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        for (i, &(u, v, insert)) in toggles.iter().enumerate() {
            let op = if insert { "insert" } else { "delete" };
            let frame = c.roundtrip(&format!(
                r##"{{"proto":1,"id":"w{i}","mode":"batch","ops":[{{"op":"{op}","rel":"E","tuple":[{u},{v}]}},{{"op":"{op}","rel":"E","tuple":[{v},{u}]}}]}}"##
            ));
            assert_eq!(field(&frame, "type"), Some("result"), "frame: {frame}");
            assert_eq!(field(&frame, "proto"), Some("1"), "frame: {frame}");
            assert_eq!(
                field(&frame, "epoch"),
                Some((i + 1).to_string().as_str()),
                "frame: {frame}"
            );
            assert_eq!(field(&frame, "changed"), Some("2"), "frame: {frame}");
            // Let readers interleave between commits.
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    let readers: Vec<_> = (0..3)
        .map(|r| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let mut seen_epochs = std::collections::BTreeSet::new();
                for i in 0..30 {
                    let frame = c.roundtrip(&format!(
                        r##"{{"proto":1,"id":"r{r}-{i}","mode":"eval","query":"#(x,y). E(x,y)"}}"##
                    ));
                    assert_eq!(field(&frame, "type"), Some("result"), "frame: {frame}");
                    let epoch: usize = field(&frame, "epoch")
                        .expect("epoch on result")
                        .parse()
                        .expect("numeric epoch");
                    let value: i64 = field(&frame, "value")
                        .expect("value on result")
                        .parse()
                        .expect("numeric value");
                    assert!(epoch < expected.len(), "epoch {epoch} out of range");
                    assert_eq!(
                        value, expected[epoch],
                        "epoch {epoch} diverged from its from-scratch rebuild: {frame}"
                    );
                    seen_epochs.insert(epoch);
                }
                seen_epochs
            })
        })
        .collect();

    writer.join().expect("writer");
    let mut all_epochs = std::collections::BTreeSet::new();
    for r in readers {
        all_epochs.extend(r.join().expect("reader"));
    }
    assert!(
        !all_epochs.is_empty(),
        "readers observed at least one epoch"
    );

    // After the writer finished, a fresh read sees the final epoch.
    let mut c = Client::connect(addr);
    let frame = c.roundtrip(r##"{"proto":1,"id":"final","mode":"eval","query":"#(x,y). E(x,y)"}"##);
    assert_eq!(field(&frame, "epoch"), Some("10"), "frame: {frame}");
    assert_eq!(
        field(&frame, "value"),
        Some(expected[10].to_string().as_str()),
        "frame: {frame}"
    );

    let report = handle.drain();
    assert_eq!(report.interrupted, 0);
    assert_eq!(report.final_metrics.counter(names::SERVE_UPDATES), 10);
    assert_eq!(
        report.final_metrics.counter(names::SERVE_TUPLES_CHANGED),
        20
    );
}

/// Protocol versioning: declaring an unknown proto gets a structured
/// `unsupported_proto` error; rejected mutations (undeclared relation,
/// arity mismatch, out-of-universe element) get `mutation` errors and
/// never bump the epoch; a no-op mutation commits nothing.
#[test]
fn proto_mismatch_and_bad_mutations_are_structured_errors() {
    let handle = start(path(6), ServerConfig::default()).expect("start");
    let mut c = Client::connect(handle.addr());

    let f = c.roundtrip(r#"{"proto":3,"id":"v","mode":"check","query":"true"}"#);
    assert_eq!(field(&f, "type"), Some("error"), "frame: {f}");
    assert_eq!(field(&f, "class"), Some("unsupported_proto"), "frame: {f}");
    assert_eq!(field(&f, "id"), Some("v"), "frame: {f}");

    // Proto 2 (the progressive dialect) is spoken.
    let f = c.roundtrip(r#"{"proto":2,"id":"v2","mode":"check","query":"true"}"#);
    assert_eq!(field(&f, "type"), Some("result"), "frame: {f}");

    let f = c.roundtrip(
        r#"{"proto":1,"id":"m1","mode":"update","op":"insert","rel":"Nope","tuple":[0,1]}"#,
    );
    assert_eq!(field(&f, "class"), Some("mutation"), "frame: {f}");
    let f = c.roundtrip(
        r#"{"proto":1,"id":"m2","mode":"update","op":"insert","rel":"E","tuple":[0,1,2]}"#,
    );
    assert_eq!(field(&f, "class"), Some("mutation"), "frame: {f}");
    let f = c.roundtrip(
        r#"{"proto":1,"id":"m3","mode":"update","op":"insert","rel":"E","tuple":[0,99]}"#,
    );
    assert_eq!(field(&f, "class"), Some("mutation"), "frame: {f}");

    // Deleting an absent tuple is accepted but commits nothing.
    let f = c.roundtrip(
        r#"{"proto":1,"id":"m4","mode":"update","op":"delete","rel":"E","tuple":[0,5]}"#,
    );
    assert_eq!(field(&f, "type"), Some("result"), "frame: {f}");
    assert_eq!(field(&f, "epoch"), Some("0"), "frame: {f}");
    assert_eq!(field(&f, "changed"), Some("0"), "frame: {f}");

    // The structure is untouched by any of the rejected mutations.
    let f = c.roundtrip(r##"{"proto":1,"id":"q","mode":"eval","query":"#(x,y). E(x,y)"}"##);
    assert_eq!(field(&f, "value"), Some("10"), "frame: {f}");
    assert_eq!(field(&f, "epoch"), Some("0"), "frame: {f}");

    handle.drain();
}

/// One minimal HTTP GET against the telemetry listener; returns
/// `(status, body)`.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr).expect("telemetry connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// ISSUE 7, satellite 3: every request-scoped response frame — result,
/// update ack, error (bad-request, panic, interrupted), shed — echoes
/// the client's `id` and carries a server-minted `trace_id`; the ids
/// are distinct across requests; and the deadline-tripped request's
/// full trace is tail-sampled without any tracing configuration.
#[test]
fn every_response_frame_echoes_id_and_trace_id() {
    let handle = start(
        path(12),
        ServerConfig {
            engine: EngineKind::Naive,
            fault_panic_element: Some(3),
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let mut c = Client::connect(handle.addr());

    let mut trace_ids = std::collections::BTreeSet::new();
    let mut check = |frame: &str, id: &str, ty: &str| -> String {
        assert_eq!(field(frame, "type"), Some(ty), "frame: {frame}");
        assert_eq!(field(frame, "id"), Some(id), "frame: {frame}");
        let tid = field(frame, "trace_id")
            .unwrap_or_else(|| panic!("no trace_id on frame: {frame}"))
            .to_string();
        assert!(!tid.is_empty(), "empty trace_id: {frame}");
        assert!(trace_ids.insert(tid.clone()), "trace_id reused: {frame}");
        tid
    };

    // Query result.
    let f = c.roundtrip(r##"{"id":"q1","mode":"eval","query":"#(x,y). E(x,y)"}"##);
    check(&f, "q1", "result");
    // Mutation ack.
    let f = c.roundtrip(r#"{"id":"u1","mode":"update","op":"insert","rel":"E","tuple":[0,5]}"#);
    check(&f, "u1", "result");
    // Bad request (valid JSON, bad field): the id still echoes.
    let f = c.roundtrip(r#"{"id":"b1","mode":"warp","query":"true"}"#);
    check(&f, "b1", "error");
    // Contained worker panic.
    let f = c.roundtrip(r##"{"id":"p1","mode":"eval","query":"#(x,y). E(x,y)","engine":"local"}"##);
    let tid = check(&f, "p1", "error");
    assert_eq!(field(&f, "class"), Some("panic"), "frame: {f}");
    let panic_tid = tid;
    // Deadline interruption.
    let f = c.roundtrip(r##"{"id":"d1","mode":"eval","query":"#(x,y). E(x,y)","timeout_ms":0}"##);
    let deadline_tid = check(&f, "d1", "error");
    assert_eq!(field(&f, "class"), Some("interrupted"), "frame: {f}");

    // Tail sampling needs no configuration: the panicked and the
    // deadline-tripped requests' traces were both kept, joined to the
    // frames by trace_id, carrying the query text and epoch.
    let traces = handle.recent_traces();
    let deadline_trace = traces
        .iter()
        .find(|t| t.contains(&format!("\"trace_id\":\"{deadline_tid}\"")))
        .unwrap_or_else(|| panic!("no sampled trace for {deadline_tid}: {traces:?}"));
    assert!(deadline_trace.contains("\"outcome\":\"interrupted\""));
    assert!(deadline_trace.contains("\"sampled\":\"tail\""));
    assert!(deadline_trace.contains("#(x,y). E(x,y)"), "query text kept");
    assert!(
        deadline_trace.contains("\"epoch\":1"),
        "epoch kept (post-update)"
    );
    assert!(
        traces
            .iter()
            .any(|t| t.contains(&format!("\"trace_id\":\"{panic_tid}\""))),
        "panicked request's trace kept"
    );

    // Shed frames carry the id too: hold the only slot, then overflow.
    let handle2 = start(
        clique(40),
        ServerConfig {
            max_inflight: 1,
            queue: 0,
            engine: EngineKind::Naive,
            max_timeout: Duration::from_secs(120),
            drain_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .expect("start 2");
    let mut slow = Client::connect(handle2.addr());
    slow.send(
        r##"{"id":"slow","mode":"eval","query":"#(x1,x2,x3,x4). (E(x1,x2) & E(x2,x3) & E(x3,x4))"}"##,
    );
    std::thread::sleep(Duration::from_millis(150));
    let mut c2 = Client::connect(handle2.addr());
    let f = c2.roundtrip(r##"{"id":"s1","mode":"check","query":"exists x. E(x,x)"}"##);
    assert_eq!(field(&f, "type"), Some("shed"), "frame: {f}");
    assert_eq!(field(&f, "id"), Some("s1"), "frame: {f}");
    assert!(
        field(&f, "trace_id").is_some_and(|t| !t.is_empty()),
        "frame: {f}"
    );
    // The drain-interrupted straggler's error frame echoes ids as well.
    let drainer = std::thread::spawn(move || handle2.drain());
    let f = slow.recv();
    assert_eq!(field(&f, "type"), Some("error"), "frame: {f}");
    assert_eq!(field(&f, "id"), Some("slow"), "frame: {f}");
    assert!(
        field(&f, "trace_id").is_some_and(|t| !t.is_empty()),
        "frame: {f}"
    );
    drainer.join().expect("drain");

    handle.drain();
}

/// ISSUE 7 acceptance: `GET /metrics` returns a valid exposition while
/// 8 concurrent clients are mid-request; `/healthz` flips once drain
/// starts; `/stats` reports the live in-flight count.
#[test]
fn telemetry_scrapes_while_eight_clients_are_midrequest() {
    let handle = start(
        clique(30),
        ServerConfig {
            max_inflight: 8,
            queue: 8,
            engine: EngineKind::Naive,
            max_timeout: Duration::from_secs(120),
            drain_timeout: Duration::from_millis(300),
            telemetry_addr: Some("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = handle.addr();
    let taddr = handle.telemetry_addr().expect("telemetry bound");

    // 8 clients, each parked in a deliberately huge naive evaluation
    // (30^4 assignments) that only drain's cancellation will end.
    let clients: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                c.send(&format!(
                    r##"{{"id":"busy-{i}","mode":"eval","query":"#(x1,x2,x3,x4). (E(x1,x2) & E(x2,x3) & E(x3,x4))"}}"##
                ));
                let f = c.recv();
                assert_eq!(field(&f, "type"), Some("error"), "frame: {f}");
                assert_eq!(field(&f, "class"), Some("interrupted"), "frame: {f}");
            })
        })
        .collect();

    // Wait until all 8 are actually in flight, via /stats itself.
    let t0 = std::time::Instant::now();
    loop {
        let (status, body) = http_get(taddr, "/stats");
        assert_eq!(status, 200, "/stats body: {body}");
        if field(&body, "inflight") == Some("8") {
            assert_eq!(field(&body, "pressure"), Some("0"), "stats: {body}");
            assert_eq!(field(&body, "draining"), Some("false"), "stats: {body}");
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "clients never went in flight: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // A healthy scrape while everyone is busy.
    let (status, body) = http_get(taddr, "/healthz");
    assert_eq!(status, 200, "healthz: {body}");
    assert!(body.contains("\"status\":\"ok\""), "healthz: {body}");

    let (status, expo) = http_get(taddr, "/metrics");
    assert_eq!(status, 200);
    assert!(expo.contains("# HELP foc_server_requests"), "expo: {expo}");
    assert!(
        expo.contains("# TYPE foc_server_inflight gauge"),
        "expo: {expo}"
    );
    assert!(
        expo.contains("foc_server_inflight 8"),
        "live gauge in exposition: {}",
        expo.lines()
            .filter(|l| l.contains("inflight"))
            .collect::<Vec<_>>()
            .join(" | ")
    );
    assert!(
        expo.contains("foc_server_latency_micros_bucket{le=\"+Inf\"}"),
        "histogram exposition: {expo}"
    );

    // Unknown routes and non-GETs are structured, not hangs.
    let (status, _) = http_get(taddr, "/nope");
    assert_eq!(status, 404);

    // Drain: /healthz flips to 503 while the listener is still up.
    let drainer = std::thread::spawn(move || handle.drain());
    let t0 = std::time::Instant::now();
    loop {
        let (status, body) = http_get(taddr, "/healthz");
        if status == 503 && body.contains("draining") {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "healthz never flipped: {status} {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let report = drainer.join().expect("drain");
    assert_eq!(
        report.interrupted, 8,
        "all stragglers cancelled at the deadline"
    );
    for c in clients {
        c.join().expect("client");
    }
}

/// ISSUE 7 acceptance: killing a worker via the fault-injection hook
/// leaves a flight-recorder postmortem file on disk whose JSON names
/// the panic and contains the ring of recent events.
#[test]
fn worker_panic_leaves_a_postmortem_file() {
    let dir = std::env::temp_dir().join(format!("foc-postmortem-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let handle = start(
        path(12),
        ServerConfig {
            engine: EngineKind::Naive,
            fault_panic_element: Some(3),
            postmortem_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let mut c = Client::connect(handle.addr());

    // A healthy request first, so the ring has history to dump.
    let f = c.roundtrip(r##"{"id":"warm","mode":"eval","query":"#(x,y). E(x,y)"}"##);
    assert_eq!(field(&f, "type"), Some("result"), "frame: {f}");
    let f =
        c.roundtrip(r##"{"id":"boom","mode":"eval","query":"#(x,y). E(x,y)","engine":"local"}"##);
    assert_eq!(field(&f, "class"), Some("panic"), "frame: {f}");
    let trace_id = field(&f, "trace_id").expect("trace id").to_string();

    let dump = dir.join("foc-postmortem-panic-0.json");
    assert!(dump.exists(), "postmortem file written: {}", dump.display());
    let text = std::fs::read_to_string(&dump).expect("read dump");
    assert!(text.contains("\"reason\":"), "dump: {text}");
    assert!(text.contains("worker panic"), "dump: {text}");
    assert!(text.contains(&trace_id), "dump names the trace: {text}");
    assert!(text.contains("\"events\": ["), "dump: {text}");

    let report = handle.drain();
    assert_eq!(report.final_metrics.counter(names::SERVE_POSTMORTEMS), 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Anytime acceptance (ISSUE 8): a fuel budget that makes plain
/// evaluation fail with an `interrupted` error instead yields — with
/// `"anytime":true` on proto 2 — at least one progressive `partial`
/// frame followed by exactly one terminal `result` frame whose
/// confidence tag marks the answer a sound lower bound. The partial
/// strictly precedes the final, and both bound the exact answer.
#[test]
fn anytime_requests_stream_partials_then_a_tagged_result() {
    let structure = path(200);
    let handle = start(
        structure.clone(),
        ServerConfig {
            engine: EngineKind::Cover,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let mut c = Client::connect(handle.addr());
    let exact = Evaluator::builder()
        .kind(EngineKind::Naive)
        .build()
        .expect("reference evaluator")
        .eval_ground(
            &structure,
            &parse_term("#(x,y). !(dist(x,y) <= 2)").expect("parse"),
        )
        .expect("reference eval");

    // Without anytime: the budget trips and the work is discarded.
    let f = c.roundtrip(
        r##"{"proto":2,"id":"plain","mode":"eval","query":"#(x,y). !(dist(x,y) <= 2)","fuel":800}"##,
    );
    assert_eq!(field(&f, "type"), Some("error"), "frame: {f}");
    assert_eq!(field(&f, "class"), Some("interrupted"), "frame: {f}");

    // With anytime: partial frame(s), then a confidence-tagged result.
    c.send(
        r##"{"proto":2,"id":"any","mode":"eval","query":"#(x,y). !(dist(x,y) <= 2)","fuel":800,"anytime":true}"##,
    );
    let mut frames = Vec::new();
    loop {
        let f = c.recv();
        let terminal = field(&f, "type") != Some("partial");
        frames.push(f);
        if terminal {
            break;
        }
    }
    let (partials, terminal) = frames.split_at(frames.len() - 1);
    assert!(
        !partials.is_empty(),
        "at least one partial frame precedes the final: {frames:?}"
    );
    for p in partials {
        assert_eq!(field(p, "type"), Some("partial"), "frame: {p}");
        assert_eq!(field(p, "id"), Some("any"), "frame: {p}");
        assert!(field(p, "pass").is_some(), "frame: {p}");
        let v: i64 = field(p, "value").unwrap().parse().expect("numeric value");
        // Each banked pass honours its own tag: an ε-estimate is within
        // its bound, every other tag is a sound lower bound.
        if field(p, "confidence") == Some("approx") {
            let b: i64 = field(p, "error_bound").unwrap().parse().unwrap();
            assert!(
                (v - exact).abs() <= b,
                "approx partial {v} strays past ±{b} of {exact}: {p}"
            );
        } else {
            assert!(v <= exact, "partial {v} bounds exact {exact}: {p}");
        }
    }
    let f = &terminal[0];
    assert_eq!(field(f, "type"), Some("result"), "frame: {f}");
    assert_eq!(field(f, "id"), Some("any"), "frame: {f}");
    assert_eq!(field(f, "proto"), Some("2"), "frame: {f}");
    // The approx rung fits its 185 samples inside this budget, and the
    // ε-estimate outranks the sample pass's lower bound.
    assert_eq!(
        field(f, "confidence"),
        Some("approx"),
        "tripped budget yields the banked ε-estimate: {f}"
    );
    assert_eq!(field(f, "approx"), Some("true"), "frame: {f}");
    let b: i64 = field(f, "error_bound").unwrap().parse().unwrap();
    let v: i64 = field(f, "value").unwrap().parse().expect("numeric value");
    assert!(
        (v - exact).abs() <= b,
        "estimate {v} strays past ±{b} of exact {exact}"
    );

    let report = handle.drain();
    assert_eq!(report.final_metrics.counter(names::SERVE_ANYTIME), 1);
    assert!(report.final_metrics.counter(names::SERVE_PARTIAL_FRAMES) >= 1);
}

/// Creates (and cleans) a unique scratch directory for WAL tests.
fn wal_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("foc-serve-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// ISSUE 10 tentpole: every acknowledged mutation survives a restart.
/// A server with a WAL directory acks three batches, goes away, and a
/// second server recovering from the same directory serves the exact
/// epoch and answers the first one acked.
#[test]
fn acknowledged_updates_survive_restart_via_wal() {
    let dir = wal_dir("restart");
    let first = start(
        path(16),
        ServerConfig {
            wal_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("start with wal");
    {
        let mut c = Client::connect(first.addr());
        let batches = [
            r##"{"proto":1,"id":"u1","mode":"batch","ops":[{"op":"insert","rel":"E","tuple":[0,8]}]}"##,
            r##"{"proto":1,"id":"u2","mode":"batch","ops":[{"op":"insert","rel":"E","tuple":[8,0]},{"op":"delete","rel":"E","tuple":[0,1]}]}"##,
            r##"{"proto":1,"id":"u3","mode":"batch","ops":[{"op":"insert","rel":"E","tuple":[15,2]}]}"##,
        ];
        for (i, b) in batches.iter().enumerate() {
            let f = c.roundtrip(b);
            assert_eq!(
                field(&f, "epoch"),
                Some(format!("{}", i + 1).as_str()),
                "frame: {f}"
            );
        }
        let f = c.roundtrip(r##"{"proto":1,"id":"q","mode":"eval","query":"#(x,y). E(x,y)"}"##);
        assert_eq!(field(&f, "value"), Some("32"), "frame: {f}");
    }
    // An abrupt departure: no graceful drain, just drop the handle.
    drop(first);

    let second = start(
        path(16),
        ServerConfig {
            wal_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("restart from wal");
    assert_eq!(second.metrics().counter(names::RECOVERY_RUNS).get(), 1);
    assert_eq!(second.metrics().counter(names::RECOVERY_REPLAYED).get(), 3);
    let mut c = Client::connect(second.addr());
    let f = c.roundtrip(r##"{"proto":1,"id":"q","mode":"eval","query":"#(x,y). E(x,y)"}"##);
    assert_eq!(field(&f, "value"), Some("32"), "frame: {f}");
    assert_eq!(field(&f, "epoch"), Some("3"), "frame: {f}");
    second.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

/// ISSUE 10, satellite 2: a request line beyond `--max-frame-bytes` is
/// answered with a structured `bad-request` frame, the connection
/// survives for the next request, and the counter ticks.
#[test]
fn oversized_frames_are_rejected_and_the_connection_survives() {
    let handle = start(
        path(8),
        ServerConfig {
            max_frame_bytes: 1024,
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let mut c = Client::connect(handle.addr());
    let big = format!(
        r##"{{"proto":1,"id":"big","mode":"eval","query":"{}"}}"##,
        "x".repeat(4096)
    );
    let f = c.roundtrip(&big);
    assert_eq!(field(&f, "class"), Some("bad-request"), "frame: {f}");
    // The same connection keeps working after the oversized line.
    let f = c.roundtrip(r##"{"proto":1,"id":"q","mode":"eval","query":"#(x,y). E(x,y)"}"##);
    assert_eq!(field(&f, "value"), Some("14"), "frame: {f}");
    drop(c);
    let report = handle.drain();
    assert_eq!(
        report.final_metrics.counter(names::SERVE_FRAMES_OVERSIZED),
        1
    );
}

/// ISSUE 10 tentpole + satellite 6: a WAL append failure rolls the
/// commit back, degrades the server to read-only (refusing further
/// mutations with a structured frame), keeps answering queries, turns
/// `/healthz` into a 503 — and the state recovered afterwards is
/// exactly the last *acknowledged* one.
#[test]
fn wal_append_failure_degrades_to_readonly_without_losing_acked_state() {
    let dir = wal_dir("degrade");
    let handle = start(
        path(16),
        ServerConfig {
            wal_dir: Some(dir.clone()),
            wal_fail_appends: Some(1),
            telemetry_addr: Some("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        },
    )
    .expect("start with failing wal");
    let taddr = handle.telemetry_addr().expect("telemetry bound");
    let mut c = Client::connect(handle.addr());

    // First mutation is durably acked.
    let f = c.roundtrip(
        r##"{"proto":1,"id":"u1","mode":"batch","ops":[{"op":"insert","rel":"E","tuple":[0,9]}]}"##,
    );
    assert_eq!(field(&f, "epoch"), Some("1"), "frame: {f}");

    // Second mutation hits the injected IO failure: rolled back, and
    // the server walks the degrade ladder into read-only mode.
    let f = c.roundtrip(
        r##"{"proto":1,"id":"u2","mode":"batch","ops":[{"op":"insert","rel":"E","tuple":[9,0]}]}"##,
    );
    assert_eq!(field(&f, "class"), Some("read-only"), "frame: {f}");
    assert!(f.contains("wal append failed"), "frame: {f}");

    // Third mutation is refused up front, same class.
    let f = c.roundtrip(
        r##"{"proto":1,"id":"u3","mode":"batch","ops":[{"op":"insert","rel":"E","tuple":[5,9]}]}"##,
    );
    assert_eq!(field(&f, "class"), Some("read-only"), "frame: {f}");

    // Queries still get answers, at the last acknowledged epoch.
    let f = c.roundtrip(r##"{"proto":1,"id":"q","mode":"eval","query":"#(x,y). E(x,y)"}"##);
    assert_eq!(field(&f, "value"), Some("31"), "frame: {f}");
    assert_eq!(field(&f, "epoch"), Some("1"), "frame: {f}");

    // Health reflects the degraded WAL.
    let (status, body) = http_get(taddr, "/healthz");
    assert_eq!(status, 503, "body: {body}");
    assert!(body.contains("wal-readonly"), "body: {body}");
    assert!(body.contains("\"readonly\":true"), "body: {body}");
    drop(c);
    drop(handle);

    // Recovery lands on the acked epoch 1, not the rolled-back 2.
    let recovered = start(
        path(16),
        ServerConfig {
            wal_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("recover");
    let mut c = Client::connect(recovered.addr());
    let f = c.roundtrip(r##"{"proto":1,"id":"q","mode":"eval","query":"#(x,y). E(x,y)"}"##);
    assert_eq!(field(&f, "value"), Some("31"), "frame: {f}");
    assert_eq!(field(&f, "epoch"), Some("1"), "frame: {f}");
    drop(c);
    recovered.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
