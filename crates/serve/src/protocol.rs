//! The JSON-lines wire protocol: request parsing and response frames.
//!
//! One request per line, one response frame per line, in order. Four
//! frame types leave the server:
//!
//! * `{"type":"result", "id":…, "mode":…, "value":…, "micros":…}` — the
//!   answer (a boolean for `check`, an integer for `eval`);
//! * `{"type":"error", "id":…, "class":…, "message":…}` — a structured
//!   failure (parse errors, evaluation errors, tripped budgets with
//!   `"class":"interrupted"` and a `"reason"` field, contained panics
//!   with `"class":"panic"`);
//! * `{"type":"shed", "retry_after_ms":…}` — admission control refused
//!   the request (or, during drain, the connection); retry later;
//! * `{"type":"drained"}` — sent on streams still open when the server
//!   finishes draining, immediately before the socket closes.

use std::time::Duration;

use foc_core::EngineKind;
use foc_obs::report::json_escape;

use crate::json::{parse, Value};

/// What a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Model checking of a sentence (`"mode":"check"`).
    Check,
    /// Evaluation of a ground term (`"mode":"eval"`).
    Eval,
}

impl Mode {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Check => "check",
            Mode::Eval => "eval",
        }
    }
}

/// A parsed request frame. Budgets here are *requests*: the server
/// clamps them to its own caps before arming.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen id, echoed on the response (`"-"` if absent).
    pub id: String,
    /// Check or eval.
    pub mode: Mode,
    /// The query text (a sentence or a ground term).
    pub query: String,
    /// Requested wall-clock allowance.
    pub timeout: Option<Duration>,
    /// Requested fuel allowance.
    pub fuel: Option<u64>,
    /// Requested byte cap against the server-wide memory account
    /// (`"mem_limit_bytes"`); trips `TripReason::Memory` when the
    /// account exceeds it mid-evaluation.
    pub mem_limit: Option<u64>,
    /// Requested engine override.
    pub engine: Option<EngineKind>,
}

/// Parses one request line. `Err` carries `(id, message)` so the error
/// frame can still echo the client's id when the frame was valid JSON
/// with a bad field.
pub fn parse_request(line: &str) -> Result<Request, (String, String)> {
    let v = parse(line).map_err(|e| ("-".to_string(), format!("invalid JSON: {e}")))?;
    let id = v
        .get("id")
        .and_then(Value::as_str)
        .unwrap_or("-")
        .to_string();
    let fail = |msg: &str| Err((id.clone(), msg.to_string()));
    let mode = match v.get("mode").and_then(Value::as_str) {
        Some("check") => Mode::Check,
        Some("eval") => Mode::Eval,
        Some(other) => return fail(&format!("unknown mode {other:?} (want check|eval)")),
        None => return fail("missing \"mode\""),
    };
    let Some(query) = v.get("query").and_then(Value::as_str) else {
        return fail("missing \"query\"");
    };
    let timeout = match v.get("timeout_ms") {
        None => None,
        Some(t) => match t.as_int() {
            Some(ms) if ms >= 0 => Some(Duration::from_millis(ms as u64)),
            _ => return fail("\"timeout_ms\" must be a non-negative integer"),
        },
    };
    let fuel = match v.get("fuel") {
        None => None,
        Some(t) => match t.as_int() {
            Some(f) if f >= 0 => Some(f as u64),
            _ => return fail("\"fuel\" must be a non-negative integer"),
        },
    };
    let mem_limit = match v.get("mem_limit_bytes") {
        None => None,
        Some(t) => match t.as_int() {
            Some(b) if b >= 0 => Some(b as u64),
            _ => return fail("\"mem_limit_bytes\" must be a non-negative integer"),
        },
    };
    let engine = match v.get("engine").and_then(Value::as_str) {
        None => None,
        Some("naive") => Some(EngineKind::Naive),
        Some("local") => Some(EngineKind::Local),
        Some("cover") => Some(EngineKind::Cover),
        Some(other) => return fail(&format!("unknown engine {other:?}")),
    };
    Ok(Request {
        id,
        mode,
        query: query.to_string(),
        timeout,
        fuel,
        mem_limit,
        engine,
    })
}

/// The answer payload of a result frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answer {
    /// `check` verdict.
    Bool(bool),
    /// `eval` value.
    Int(i64),
}

/// Renders a result frame.
pub fn result_frame(id: &str, mode: Mode, answer: Answer, micros: u64) -> String {
    let value = match answer {
        Answer::Bool(b) => b.to_string(),
        Answer::Int(i) => i.to_string(),
    };
    format!(
        "{{\"type\":\"result\",\"id\":\"{}\",\"mode\":\"{}\",\"value\":{value},\"micros\":{micros}}}",
        json_escape(id),
        mode.name(),
    )
}

/// Renders an error frame. `reason` is present only for
/// `class == "interrupted"` (deadline / fuel / cancellation / memory
/// limit).
pub fn error_frame(id: &str, class: &str, reason: Option<&str>, message: &str) -> String {
    let reason_field = reason
        .map(|r| format!(",\"reason\":\"{}\"", json_escape(r)))
        .unwrap_or_default();
    format!(
        "{{\"type\":\"error\",\"id\":\"{}\",\"class\":\"{}\"{reason_field},\"message\":\"{}\"}}",
        json_escape(id),
        json_escape(class),
        json_escape(message),
    )
}

/// Renders a shed frame (admission refused; retry after the hint).
pub fn shed_frame(retry_after_ms: u64) -> String {
    format!("{{\"type\":\"shed\",\"retry_after_ms\":{retry_after_ms}}}")
}

/// Renders the drain notice sent before the server closes a stream.
pub fn drained_frame() -> String {
    "{\"type\":\"drained\"}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip_and_clamps() {
        let r = parse_request(
            r##"{"id":"q7","mode":"eval","query":"#(x,y). E(x,y)","timeout_ms":250,"fuel":1000,"mem_limit_bytes":4096,"engine":"cover"}"##,
        )
        .unwrap();
        assert_eq!(r.id, "q7");
        assert_eq!(r.mode, Mode::Eval);
        assert_eq!(r.timeout, Some(Duration::from_millis(250)));
        assert_eq!(r.fuel, Some(1000));
        assert_eq!(r.mem_limit, Some(4096));
        assert_eq!(r.engine, Some(EngineKind::Cover));
    }

    #[test]
    fn bad_requests_keep_the_id_when_parseable() {
        let (id, msg) = parse_request(r#"{"id":"x","mode":"warp","query":"true"}"#).unwrap_err();
        assert_eq!(id, "x");
        assert!(msg.contains("unknown mode"));
        let (id, _) = parse_request("not json").unwrap_err();
        assert_eq!(id, "-");
        let (_, msg) = parse_request(r#"{"mode":"check"}"#).unwrap_err();
        assert!(msg.contains("query"));
    }

    #[test]
    fn frames_are_single_line_json() {
        let frames = [
            result_frame("a", Mode::Check, Answer::Bool(true), 12),
            result_frame("b", Mode::Eval, Answer::Int(-3), 7),
            error_frame(
                "c",
                "interrupted",
                Some("deadline"),
                "interrupted by deadline",
            ),
            error_frame("d\"e", "panic", None, "boom"),
            shed_frame(50),
            drained_frame(),
        ];
        for f in &frames {
            assert!(!f.contains('\n'), "frame must be one line: {f}");
            let v = crate::json::parse(f).unwrap_or_else(|e| panic!("unparseable {f}: {e}"));
            assert!(v.get("type").is_some());
        }
        assert_eq!(
            frames[0],
            "{\"type\":\"result\",\"id\":\"a\",\"mode\":\"check\",\"value\":true,\"micros\":12}"
        );
    }
}
