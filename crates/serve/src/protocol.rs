//! The JSON-lines wire protocol: request parsing and response frames.
//!
//! One request per line; responses arrive in request order. Proto 1 is
//! strictly one frame per request; proto 2 adds *progressive* delivery
//! for anytime queries — zero or more `partial` frames followed by
//! exactly one terminal frame (`result`, `error`, or `shed`). A request
//! declaring any other version is refused with a structured
//! `{"class":"unsupported_proto"}` error (requests without the field
//! are treated as proto 1 for backwards compatibility). Every
//! request-scoped frame (everything except `drained`, which is a
//! connection-level notice) echoes the client's `id` and carries the
//! server-minted `trace_id` of the request, so a client can join its
//! responses against the server's sampled traces and flight-recorder
//! dumps. The frame taxonomy is tabulated in `DESIGN.md` §"Wire
//! frames"; in short, the frames leaving the server are:
//!
//! * `{"type":"result", "proto":1, "id":…, "trace_id":…, "mode":…,
//!   "value":…, "epoch":…, "micros":…}` — a query answer (a boolean
//!   for `check`, an integer for `eval`), stamped with the epoch of
//!   the snapshot it evaluated against;
//! * `{"type":"result", "proto":1, "id":…, "trace_id":…,
//!   "mode":"update"|"batch", "epoch":…, "changed":…, "micros":…}` — a
//!   committed mutation: the epoch now current and how many tuples
//!   actually changed;
//! * `{"type":"error", "proto":1, "id":…, "trace_id":…, "class":…,
//!   "message":…}` — a structured failure (parse errors, evaluation
//!   errors, rejected mutations with `"class":"mutation"`, version
//!   mismatches with `"class":"unsupported_proto"`, tripped budgets
//!   with `"class":"interrupted"` and a `"reason"` field, contained
//!   panics with `"class":"panic"`);
//! * `{"type":"shed", "proto":1, "id":…, "trace_id":…,
//!   "retry_after_ms":…}` — admission control refused the request (or,
//!   during drain, the connection; then `id` is `"-"`); the hint is
//!   derived live from queue depth and the latency p99, with
//!   deterministic per-request jitter;
//! * `{"type":"drained", "proto":1}` — sent on streams still open when
//!   the server finishes draining, immediately before the socket
//!   closes.
//!
//! Proto-2 additions (anytime evaluation; see `DESIGN.md` §"Anytime
//! evaluation"):
//!
//! * `{"type":"partial", "proto":2, "id":…, "trace_id":…, "mode":…,
//!   "pass":"sample"|"approx"|"local"|"exact", "value":…,
//!   "confidence":"exact"|"approx"|"lower_bound"|"partial"
//!   [,"approx":true,"error_bound":…] [,"clusters_done":…,
//!   "clusters_total":…], "micros":…}` — one frame per deepening pass
//!   that banked an answer, streamed while evaluation continues;
//! * the terminal `result` frame of an anytime request additionally
//!   carries the same `confidence` (and, for `"partial"`, progress)
//!   fields — the best-so-far answer when the budget tripped, tagged
//!   instead of discarded;
//! * an `eval` request with `"approx":true` (proto 2) runs the `(ε, δ)`
//!   estimator instead of an exact engine; its `result` frame carries
//!   `"confidence":"approx","approx":true,"error_bound":…` — the
//!   estimate is within ±`error_bound` of the true count with
//!   probability ≥ 1−δ. `"epsilon_milli"` (1..=1000, thousandths)
//!   overrides the server's default ε; the wire stays integer-only.

use std::time::Duration;

use foc_core::{Confidence, EngineKind};
use foc_obs::report::json_escape;

use crate::json::{parse, Value};

/// The baseline wire-protocol version: one frame per request. Stamped
/// on every proto-1 frame; requests declaring an unknown version are
/// refused.
pub const PROTO_VERSION: i64 = 1;

/// The progressive dialect: a superset of proto 1 that adds the
/// `anytime` request flag, `partial` frames, and confidence-tagged
/// result frames. Clients opt in per request with `"proto":2`.
pub const PROTO_PROGRESSIVE: i64 = 2;

/// What a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Model checking of a sentence (`"mode":"check"`).
    Check,
    /// Evaluation of a ground term (`"mode":"eval"`).
    Eval,
    /// A single tuple mutation (`"mode":"update"` with `op`/`rel`/
    /// `tuple` fields).
    Update,
    /// An atomic batch of tuple mutations (`"mode":"batch"` with an
    /// `ops` array).
    Batch,
}

impl Mode {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Check => "check",
            Mode::Eval => "eval",
            Mode::Update => "update",
            Mode::Batch => "batch",
        }
    }

    /// Whether this mode mutates the served structure.
    pub fn is_mutation(self) -> bool {
        matches!(self, Mode::Update | Mode::Batch)
    }
}

/// One requested tuple mutation, as parsed off the wire (converted to
/// [`foc_structures::TupleOp`] by the server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateOp {
    /// `true` = insert, `false` = delete.
    pub insert: bool,
    /// Relation name.
    pub rel: String,
    /// The tuple, one component per position.
    pub tuple: Vec<u32>,
}

/// A parsed request frame. Budgets here are *requests*: the server
/// clamps them to its own caps before arming.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen id, echoed on the response (`"-"` if absent).
    pub id: String,
    /// The protocol dialect the client declared (1 when absent).
    pub proto: i64,
    /// Anytime evaluation requested (`"anytime":true`; proto 2 only).
    /// The server streams a `partial` frame per completed deepening
    /// pass and tags the terminal result with its confidence.
    pub anytime: bool,
    /// Approximate evaluation requested (`"approx":true`; proto 2,
    /// `eval` mode only). The server answers with an `(ε, δ)`-bounded
    /// estimate flagged `"approx":true` with its `error_bound`.
    pub approx: bool,
    /// Requested additive-error fraction (`"epsilon_milli"`, parsed as
    /// thousandths; requires `"approx":true`). `None` = server default.
    pub epsilon: Option<f64>,
    /// Check, eval, update, or batch.
    pub mode: Mode,
    /// The query text (a sentence or a ground term; empty for
    /// mutations).
    pub query: String,
    /// The mutation ops (empty for queries).
    pub ops: Vec<UpdateOp>,
    /// Requested wall-clock allowance.
    pub timeout: Option<Duration>,
    /// Requested fuel allowance.
    pub fuel: Option<u64>,
    /// Requested byte cap against the server-wide memory account
    /// (`"mem_limit_bytes"`); trips `TripReason::Memory` when the
    /// account exceeds it mid-evaluation.
    pub mem_limit: Option<u64>,
    /// Requested engine override.
    pub engine: Option<EngineKind>,
}

/// Why a request line was refused before evaluation. `class` feeds the
/// error frame (`"bad-request"` for malformed frames,
/// `"unsupported_proto"` for version mismatches); `id` echoes the
/// client's id when the frame was valid JSON with a bad field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFailure {
    /// Echoed request id (`"-"` when unreadable).
    pub id: String,
    /// Stable error class for the frame.
    pub class: &'static str,
    /// Human-readable reason.
    pub message: String,
}

fn parse_op(v: &Value) -> Result<UpdateOp, String> {
    let insert = match v.get("op").and_then(Value::as_str) {
        Some("insert") => true,
        Some("delete") => false,
        Some(other) => return Err(format!("unknown op {other:?} (want insert|delete)")),
        None => return Err("missing \"op\"".to_string()),
    };
    let Some(rel) = v.get("rel").and_then(Value::as_str) else {
        return Err("missing \"rel\"".to_string());
    };
    let tuple = match v.get("tuple") {
        Some(Value::Array(items)) => items
            .iter()
            .map(|t| match t.as_int() {
                Some(x) if (0..=i64::from(u32::MAX)).contains(&x) => Ok(x as u32),
                _ => Err("\"tuple\" components must be non-negative integers".to_string()),
            })
            .collect::<Result<Vec<u32>, String>>()?,
        _ => return Err("missing \"tuple\" array".to_string()),
    };
    Ok(UpdateOp {
        insert,
        rel: rel.to_string(),
        tuple,
    })
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ParseFailure> {
    let bad = |id: &str, msg: String| ParseFailure {
        id: id.to_string(),
        class: "bad-request",
        message: msg,
    };
    let v = parse(line).map_err(|e| bad("-", format!("invalid JSON: {e}")))?;
    let id = v
        .get("id")
        .and_then(Value::as_str)
        .unwrap_or("-")
        .to_string();
    let fail = |msg: String| Err(bad(&id, msg));
    let proto = match v.get("proto") {
        None => PROTO_VERSION,
        Some(p) => match p.as_int() {
            Some(p @ (PROTO_VERSION | PROTO_PROGRESSIVE)) => p,
            Some(other) => {
                return Err(ParseFailure {
                    id,
                    class: "unsupported_proto",
                    message: format!(
                        "protocol version {other} is not supported (this server speaks proto {PROTO_VERSION} and {PROTO_PROGRESSIVE})"
                    ),
                })
            }
            None => return fail("\"proto\" must be an integer".to_string()),
        },
    };
    let anytime = match v.get("anytime") {
        None => false,
        Some(b) => match b.as_bool() {
            Some(x) => x,
            None => return fail("\"anytime\" must be a boolean".to_string()),
        },
    };
    if anytime && proto < PROTO_PROGRESSIVE {
        return fail(format!(
            "\"anytime\" requires proto {PROTO_PROGRESSIVE} (progressive frames)"
        ));
    }
    let approx = match v.get("approx") {
        None => false,
        Some(b) => match b.as_bool() {
            Some(x) => x,
            None => return fail("\"approx\" must be a boolean".to_string()),
        },
    };
    if approx && proto < PROTO_PROGRESSIVE {
        return fail(format!(
            "\"approx\" requires proto {PROTO_PROGRESSIVE} (approx-flagged frames)"
        ));
    }
    let epsilon = match v.get("epsilon_milli") {
        None => None,
        Some(e) => match e.as_int() {
            Some(milli @ 1..=1000) => Some(milli as f64 / 1000.0),
            _ => return fail("\"epsilon_milli\" must be an integer in 1..=1000".to_string()),
        },
    };
    if epsilon.is_some() && !approx {
        return fail("\"epsilon_milli\" requires \"approx\":true".to_string());
    }
    let mode = match v.get("mode").and_then(Value::as_str) {
        Some("check") => Mode::Check,
        Some("eval") => Mode::Eval,
        Some("update") => Mode::Update,
        Some("batch") => Mode::Batch,
        Some(other) => {
            return fail(format!(
                "unknown mode {other:?} (want check|eval|update|batch)"
            ))
        }
        None => return fail("missing \"mode\"".to_string()),
    };
    if approx && mode != Mode::Eval {
        return fail("\"approx\" applies to eval requests only".to_string());
    }
    let (query, ops) = match mode {
        Mode::Check | Mode::Eval => {
            let Some(q) = v.get("query").and_then(Value::as_str) else {
                return fail("missing \"query\"".to_string());
            };
            (q.to_string(), Vec::new())
        }
        Mode::Update => match parse_op(&v) {
            Ok(op) => (String::new(), vec![op]),
            Err(e) => return fail(e),
        },
        Mode::Batch => match v.get("ops") {
            Some(Value::Array(items)) => {
                let mut ops = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    match parse_op(item) {
                        Ok(op) => ops.push(op),
                        Err(e) => return fail(format!("ops[{i}]: {e}")),
                    }
                }
                (String::new(), ops)
            }
            _ => return fail("missing \"ops\" array".to_string()),
        },
    };
    let timeout = match v.get("timeout_ms") {
        None => None,
        Some(t) => match t.as_int() {
            Some(ms) if ms >= 0 => Some(Duration::from_millis(ms as u64)),
            _ => return fail("\"timeout_ms\" must be a non-negative integer".to_string()),
        },
    };
    let fuel = match v.get("fuel") {
        None => None,
        Some(t) => match t.as_int() {
            Some(f) if f >= 0 => Some(f as u64),
            _ => return fail("\"fuel\" must be a non-negative integer".to_string()),
        },
    };
    let mem_limit = match v.get("mem_limit_bytes") {
        None => None,
        Some(t) => match t.as_int() {
            Some(b) if b >= 0 => Some(b as u64),
            _ => return fail("\"mem_limit_bytes\" must be a non-negative integer".to_string()),
        },
    };
    let engine = match v.get("engine").and_then(Value::as_str) {
        None => None,
        Some("naive") => Some(EngineKind::Naive),
        Some("local") => Some(EngineKind::Local),
        Some("cover") => Some(EngineKind::Cover),
        Some(other) => return fail(format!("unknown engine {other:?}")),
    };
    Ok(Request {
        id,
        proto,
        anytime,
        approx,
        epsilon,
        mode,
        query,
        ops,
        timeout,
        fuel,
        mem_limit,
        engine,
    })
}

/// Renders the confidence fields shared by `partial` and anytime
/// `result` frames: `"confidence":…` plus, for partial coverage, the
/// progress pair.
fn confidence_fields(c: &Confidence) -> String {
    match c {
        Confidence::Partial {
            clusters_done,
            clusters_total,
        } => format!(
            ",\"confidence\":\"partial\",\"clusters_done\":{clusters_done},\"clusters_total\":{clusters_total}"
        ),
        Confidence::Approximate { error_bound } => format!(
            ",\"confidence\":\"approx\",\"approx\":true,\"error_bound\":{error_bound}"
        ),
        other => format!(",\"confidence\":\"{}\"", other.tag()),
    }
}

/// The answer payload of a result frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answer {
    /// `check` verdict.
    Bool(bool),
    /// `eval` value.
    Int(i64),
}

/// Renders a query result frame. `epoch` is the mutation epoch of the
/// snapshot the query evaluated against; `trace_id` is the
/// server-minted trace identifier of the request.
pub fn result_frame(
    id: &str,
    trace_id: &str,
    mode: Mode,
    answer: Answer,
    epoch: u64,
    micros: u64,
) -> String {
    let value = match answer {
        Answer::Bool(b) => b.to_string(),
        Answer::Int(i) => i.to_string(),
    };
    format!(
        "{{\"type\":\"result\",\"proto\":{PROTO_VERSION},\"id\":\"{}\",\"trace_id\":\"{}\",\"mode\":\"{}\",\"value\":{value},\"epoch\":{epoch},\"micros\":{micros}}}",
        json_escape(id),
        json_escape(trace_id),
        mode.name(),
    )
}

/// Renders one progressive `partial` frame (proto 2): the answer a
/// completed deepening pass banked, streamed while stronger passes are
/// still running. `micros` is the wall time of that pass alone.
pub fn partial_frame(
    id: &str,
    trace_id: &str,
    mode: Mode,
    pass: &str,
    answer: Answer,
    confidence: &Confidence,
    micros: u64,
) -> String {
    let value = match answer {
        Answer::Bool(b) => b.to_string(),
        Answer::Int(i) => i.to_string(),
    };
    format!(
        "{{\"type\":\"partial\",\"proto\":{PROTO_PROGRESSIVE},\"id\":\"{}\",\"trace_id\":\"{}\",\"mode\":\"{}\",\"pass\":\"{}\",\"value\":{value}{},\"micros\":{micros}}}",
        json_escape(id),
        json_escape(trace_id),
        mode.name(),
        json_escape(pass),
        confidence_fields(confidence),
    )
}

/// Renders the terminal result frame of an anytime request: the
/// best-so-far answer with its confidence tag. `proto` echoes the
/// request's dialect (a forced-anytime proto-1 client still gets a
/// proto-1 frame; the confidence fields are additive).
#[allow(clippy::too_many_arguments)]
pub fn anytime_result_frame(
    proto: i64,
    id: &str,
    trace_id: &str,
    mode: Mode,
    answer: Answer,
    confidence: &Confidence,
    epoch: u64,
    micros: u64,
) -> String {
    let value = match answer {
        Answer::Bool(b) => b.to_string(),
        Answer::Int(i) => i.to_string(),
    };
    format!(
        "{{\"type\":\"result\",\"proto\":{proto},\"id\":\"{}\",\"trace_id\":\"{}\",\"mode\":\"{}\",\"value\":{value}{},\"epoch\":{epoch},\"micros\":{micros}}}",
        json_escape(id),
        json_escape(trace_id),
        mode.name(),
        confidence_fields(confidence),
    )
}

/// Renders a mutation result frame: the epoch now current after the
/// commit (unchanged if the batch was a no-op) and the number of tuples
/// that actually changed.
pub fn update_frame(
    id: &str,
    trace_id: &str,
    mode: Mode,
    epoch: u64,
    changed: usize,
    micros: u64,
) -> String {
    format!(
        "{{\"type\":\"result\",\"proto\":{PROTO_VERSION},\"id\":\"{}\",\"trace_id\":\"{}\",\"mode\":\"{}\",\"epoch\":{epoch},\"changed\":{changed},\"micros\":{micros}}}",
        json_escape(id),
        json_escape(trace_id),
        mode.name(),
    )
}

/// Renders an error frame. `reason` is present only for
/// `class == "interrupted"` (deadline / fuel / cancellation / memory
/// limit).
pub fn error_frame(
    id: &str,
    trace_id: &str,
    class: &str,
    reason: Option<&str>,
    message: &str,
) -> String {
    let reason_field = reason
        .map(|r| format!(",\"reason\":\"{}\"", json_escape(r)))
        .unwrap_or_default();
    format!(
        "{{\"type\":\"error\",\"proto\":{PROTO_VERSION},\"id\":\"{}\",\"trace_id\":\"{}\",\"class\":\"{}\"{reason_field},\"message\":\"{}\"}}",
        json_escape(id),
        json_escape(trace_id),
        json_escape(class),
        json_escape(message),
    )
}

/// Renders a shed frame (admission refused; retry after the hint).
/// `id` is the client's request id when the refused line parsed far
/// enough to carry one, `"-"` when the whole connection was refused
/// during drain.
pub fn shed_frame(id: &str, trace_id: &str, retry_after_ms: u64) -> String {
    format!(
        "{{\"type\":\"shed\",\"proto\":{PROTO_VERSION},\"id\":\"{}\",\"trace_id\":\"{}\",\"retry_after_ms\":{retry_after_ms}}}",
        json_escape(id),
        json_escape(trace_id),
    )
}

/// Renders the drain notice sent before the server closes a stream.
pub fn drained_frame() -> String {
    format!("{{\"type\":\"drained\",\"proto\":{PROTO_VERSION}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip_and_clamps() {
        let r = parse_request(
            r##"{"proto":1,"id":"q7","mode":"eval","query":"#(x,y). E(x,y)","timeout_ms":250,"fuel":1000,"mem_limit_bytes":4096,"engine":"cover"}"##,
        )
        .unwrap();
        assert_eq!(r.id, "q7");
        assert_eq!(r.mode, Mode::Eval);
        assert_eq!(r.timeout, Some(Duration::from_millis(250)));
        assert_eq!(r.fuel, Some(1000));
        assert_eq!(r.mem_limit, Some(4096));
        assert_eq!(r.engine, Some(EngineKind::Cover));
    }

    #[test]
    fn update_and_batch_requests_parse() {
        let r = parse_request(
            r#"{"proto":1,"id":"u1","mode":"update","op":"insert","rel":"E","tuple":[3,7]}"#,
        )
        .unwrap();
        assert_eq!(r.mode, Mode::Update);
        assert!(r.mode.is_mutation());
        assert_eq!(
            r.ops,
            vec![UpdateOp {
                insert: true,
                rel: "E".to_string(),
                tuple: vec![3, 7],
            }]
        );

        let r = parse_request(
            r#"{"id":"b1","mode":"batch","ops":[{"op":"insert","rel":"E","tuple":[0,1]},{"op":"delete","rel":"E","tuple":[1,0]}]}"#,
        )
        .unwrap();
        assert_eq!(r.mode, Mode::Batch);
        assert_eq!(r.ops.len(), 2);
        assert!(!r.ops[1].insert);

        let f = parse_request(r#"{"id":"u2","mode":"update","op":"warp","rel":"E","tuple":[1]}"#)
            .unwrap_err();
        assert_eq!(f.class, "bad-request");
        assert!(f.message.contains("unknown op"));
        let f = parse_request(r#"{"id":"b2","mode":"batch","ops":[{"op":"insert","rel":"E"}]}"#)
            .unwrap_err();
        assert!(f.message.contains("ops[0]"));
    }

    #[test]
    fn unknown_proto_versions_are_refused() {
        let f = parse_request(r#"{"proto":3,"id":"v","mode":"check","query":"true"}"#).unwrap_err();
        assert_eq!(f.class, "unsupported_proto");
        assert_eq!(f.id, "v");
        assert!(f.message.contains("proto 1"));
        // Absent proto = proto 1 (pre-versioning clients).
        let r = parse_request(r#"{"id":"v","mode":"check","query":"x = x"}"#).unwrap();
        assert_eq!(r.proto, PROTO_VERSION);
        assert!(!r.anytime);
        let f = parse_request(r#"{"proto":"x","mode":"check","query":"true"}"#).unwrap_err();
        assert_eq!(f.class, "bad-request");
    }

    #[test]
    fn proto_2_negotiates_anytime() {
        let r = parse_request(
            r##"{"proto":2,"id":"a","mode":"eval","query":"#(x). x = x","anytime":true}"##,
        )
        .unwrap();
        assert_eq!(r.proto, PROTO_PROGRESSIVE);
        assert!(r.anytime);
        // Proto 2 without the flag is plain one-frame service.
        let r = parse_request(r#"{"proto":2,"id":"b","mode":"check","query":"true"}"#).unwrap();
        assert!(!r.anytime);
        // The flag without the dialect is a client bug, not a silent
        // downgrade.
        let f = parse_request(r#"{"id":"c","mode":"check","query":"true","anytime":true}"#)
            .unwrap_err();
        assert_eq!(f.class, "bad-request");
        assert!(f.message.contains("proto 2"));
        let f = parse_request(r#"{"proto":2,"id":"d","mode":"check","query":"true","anytime":1}"#)
            .unwrap_err();
        assert!(f.message.contains("boolean"));
    }

    #[test]
    fn progressive_frames_render() {
        let p = partial_frame(
            "q1",
            "t9",
            Mode::Eval,
            "sample",
            Answer::Int(41),
            &Confidence::LowerBound,
            120,
        );
        assert_eq!(
            p,
            "{\"type\":\"partial\",\"proto\":2,\"id\":\"q1\",\"trace_id\":\"t9\",\"mode\":\"eval\",\"pass\":\"sample\",\"value\":41,\"confidence\":\"lower_bound\",\"micros\":120}"
        );
        let r = anytime_result_frame(
            2,
            "q1",
            "t9",
            Mode::Eval,
            Answer::Int(41),
            &Confidence::Partial {
                clusters_done: 3,
                clusters_total: 7,
            },
            5,
            990,
        );
        assert!(r.contains("\"confidence\":\"partial\""));
        assert!(r.contains("\"clusters_done\":3"));
        assert!(r.contains("\"clusters_total\":7"));
        assert!(r.contains("\"proto\":2"));
        let exact = anytime_result_frame(
            1,
            "q2",
            "ta",
            Mode::Check,
            Answer::Bool(true),
            &Confidence::Exact,
            0,
            10,
        );
        assert!(exact.contains("\"confidence\":\"exact\""));
        assert!(exact.contains("\"proto\":1"));
        for f in [&p, &r, &exact] {
            assert!(!f.contains('\n'));
            crate::json::parse(f).unwrap_or_else(|e| panic!("unparseable {f}: {e}"));
        }
    }

    #[test]
    fn approx_requests_negotiate_like_anytime() {
        let r = parse_request(
            r##"{"proto":2,"id":"e","mode":"eval","query":"#(x,y). E(x,y)","approx":true,"epsilon_milli":50}"##,
        )
        .unwrap();
        assert!(r.approx);
        assert_eq!(r.epsilon, Some(0.05));
        // ε defaults server-side when the field is absent.
        let r = parse_request(
            r##"{"proto":2,"id":"f","mode":"eval","query":"#(x). x = x","approx":true}"##,
        )
        .unwrap();
        assert!(r.approx);
        assert_eq!(r.epsilon, None);
        // The flag needs the progressive dialect, eval mode, and a sane ε.
        let f = parse_request(r##"{"id":"g","mode":"eval","query":"#(x). x = x","approx":true}"##)
            .unwrap_err();
        assert!(f.message.contains("proto 2"));
        let f =
            parse_request(r#"{"proto":2,"id":"h","mode":"check","query":"true","approx":true}"#)
                .unwrap_err();
        assert!(f.message.contains("eval requests only"));
        let f = parse_request(
            r##"{"proto":2,"id":"i","mode":"eval","query":"#(x). x = x","approx":true,"epsilon_milli":0}"##,
        )
        .unwrap_err();
        assert!(f.message.contains("1..=1000"));
        let f = parse_request(
            r##"{"proto":2,"id":"j","mode":"eval","query":"#(x). x = x","epsilon_milli":100}"##,
        )
        .unwrap_err();
        assert!(f.message.contains("requires \"approx\""));
    }

    #[test]
    fn approx_frames_flag_the_estimate_and_its_bound() {
        let r = anytime_result_frame(
            2,
            "q9",
            "tb",
            Mode::Eval,
            Answer::Int(870),
            &Confidence::Approximate { error_bound: 90 },
            0,
            44,
        );
        assert_eq!(
            r,
            "{\"type\":\"result\",\"proto\":2,\"id\":\"q9\",\"trace_id\":\"tb\",\"mode\":\"eval\",\"value\":870,\"confidence\":\"approx\",\"approx\":true,\"error_bound\":90,\"epoch\":0,\"micros\":44}"
        );
        let p = partial_frame(
            "q9",
            "tb",
            Mode::Eval,
            "approx",
            Answer::Int(870),
            &Confidence::Approximate { error_bound: 90 },
            21,
        );
        assert!(p.contains("\"pass\":\"approx\""));
        assert!(p.contains("\"approx\":true,\"error_bound\":90"));
        for f in [&r, &p] {
            assert!(!f.contains('\n'));
            crate::json::parse(f).unwrap_or_else(|e| panic!("unparseable {f}: {e}"));
        }
    }

    #[test]
    fn bad_requests_keep_the_id_when_parseable() {
        let f = parse_request(r#"{"id":"x","mode":"warp","query":"true"}"#).unwrap_err();
        assert_eq!(f.id, "x");
        assert_eq!(f.class, "bad-request");
        assert!(f.message.contains("unknown mode"));
        let f = parse_request("not json").unwrap_err();
        assert_eq!(f.id, "-");
        let f = parse_request(r#"{"mode":"check"}"#).unwrap_err();
        assert!(f.message.contains("query"));
    }

    #[test]
    fn frames_are_single_line_json() {
        let frames = [
            result_frame("a", "t1", Mode::Check, Answer::Bool(true), 0, 12),
            result_frame("b", "t2", Mode::Eval, Answer::Int(-3), 4, 7),
            update_frame("u", "t3", Mode::Update, 5, 2, 9),
            error_frame(
                "c",
                "t4",
                "interrupted",
                Some("deadline"),
                "interrupted by deadline",
            ),
            error_frame("d\"e", "t5", "panic", None, "boom"),
            shed_frame("s", "t6", 50),
            drained_frame(),
        ];
        for f in &frames {
            assert!(!f.contains('\n'), "frame must be one line: {f}");
            let v = crate::json::parse(f).unwrap_or_else(|e| panic!("unparseable {f}: {e}"));
            assert!(v.get("type").is_some());
            assert_eq!(
                v.get("proto").and_then(crate::json::Value::as_int),
                Some(PROTO_VERSION),
                "every frame carries the protocol version: {f}"
            );
        }
        // Every frame except the connection-level drain notice carries
        // the request's trace_id.
        for f in &frames[..frames.len() - 1] {
            let v = crate::json::parse(f).unwrap();
            assert!(
                v.get("trace_id")
                    .and_then(crate::json::Value::as_str)
                    .is_some(),
                "request-scoped frames carry trace_id: {f}"
            );
        }
        assert_eq!(
            frames[0],
            "{\"type\":\"result\",\"proto\":1,\"id\":\"a\",\"trace_id\":\"t1\",\"mode\":\"check\",\"value\":true,\"epoch\":0,\"micros\":12}"
        );
        assert_eq!(
            frames[2],
            "{\"type\":\"result\",\"proto\":1,\"id\":\"u\",\"trace_id\":\"t3\",\"mode\":\"update\",\"epoch\":5,\"changed\":2,\"micros\":9}"
        );
    }
}
