//! The telemetry listener: a second TCP socket answering minimal
//! HTTP/1.x `GET`s so standard scrapers can observe a running server
//! without touching the query socket (or its admission gate — a scrape
//! never competes with requests for a slot).
//!
//! Hand-rolled on `std::net` like the rest of the crate: the workspace
//! takes no dependencies, and the surface is three fixed routes:
//!
//! * `GET /metrics` — the metrics registry in Prometheus text
//!   exposition format ([`foc_obs::render_prometheus`]);
//! * `GET /healthz` — liveness that is drain- and pressure-aware:
//!   `200` while serving, `503` once draining or when the memory
//!   ladder has escalated to the shed rung;
//! * `GET /stats` — a one-line JSON snapshot of live state (in-flight
//!   count, queue depth, structure epoch, cache occupancy and hit
//!   rate, pressure rung, uptime) — the feed behind `foc top`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use foc_obs::names;

use crate::server::Shared;

/// Binds `addr` and spawns the scrape loop. Returns the resolved
/// address (for `:0` binds) and the thread handle; the loop exits when
/// the server's `accept_stop` flag flips during drain.
pub(crate) fn start(
    addr: &str,
    shared: Arc<Shared>,
) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let thread = std::thread::spawn(move || scrape_loop(&listener, &shared));
    Ok((local, thread))
}

fn scrape_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.telemetry_stop() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = answer(stream, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Reads one request head and writes one response. Scrapes are served
/// inline on the listener thread — bodies are small and built from
/// atomics, so the bound is the 250 ms read timeout per connection, and
/// a stalled scraper can never wedge the query path (separate socket,
/// separate thread, no gate).
fn answer(mut stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_nodelay(true).ok();
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 4096 {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&head);
    let mut parts = text.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    let (status, ctype, body) = if method != "GET" {
        (
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        route(path, shared)
    };
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
}

fn route(path: &str, shared: &Arc<Shared>) -> (u16, &'static str, String) {
    match path {
        "/metrics" => {
            shared
                .metrics()
                .counter(names::SERVE_TELEMETRY_SCRAPES)
                .inc();
            (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                foc_obs::render_prometheus(&shared.metrics().snapshot()),
            )
        }
        "/healthz" => shared.healthz(),
        "/stats" => (200, "application/json", shared.stats_json()),
        _ => (404, "text/plain; charset=utf-8", "not found\n".to_string()),
    }
}
