//! The resilient query server: admission control, per-request budgets,
//! panic isolation, a memory-pressure ladder, and graceful drain.
//!
//! One `std::net::TcpListener`, one accept thread (non-blocking, so it
//! can never be wedged by a slow client or a full admission queue), one
//! thread per connection. The structure is loaded once; every request
//! builds a cheap [`Evaluator`] over it, sharing one [`TermCache`]
//! across all sessions (the "warm pool" — the expensive state is the
//! memoised values, not the evaluator structs).
//!
//! Failure containment, per request:
//! * the request's deadline/fuel are clamped by the server caps and
//!   armed as a [`foc_guard::Budget`] (plus the drain [`CancelToken`]
//!   and an optional request-level memory cap against the server-wide
//!   [`MemoryMeter`]);
//! * evaluation runs under [`foc_parallel::run_isolated`], so a
//!   panicking query is answered with a structured error frame while
//!   the connection thread survives;
//! * admission is a bounded gate: over `max_inflight` requests wait in
//!   a bounded queue; over `queue` waiters, the request is shed with a
//!   `retry_after_ms` hint — nothing ever blocks unboundedly.
//!
//! Memory watermark escalation (server-wide, observed at admission):
//! shrink the shared cache to half → evict it entirely and stop caching
//! → shed requests until the meter drops below the limit. Requests can
//! additionally carry their own byte cap, which arms
//! `TripReason::Memory` on the guard and surfaces as an
//! `"interrupted"` error frame.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant, SystemTime};

use foc_core::{
    AnswerValue, AnytimeConfig, ApproxConfig, Confidence, CostModel, DegradePolicy, EngineKind,
    Error, Evaluator, PassReport,
};
use foc_covers::CoverStore;
use foc_guard::{Budget, CancelToken, MemoryMeter, TraceContext, TripReason};
use foc_locality::{migrate_cache, TermCache};
use foc_logic::parse::{parse_formula, parse_term};
use foc_logic::Predicates;
use foc_obs::{
    names, pow2_buckets, quantile_detail, FlightRecorder, Gauge, Histogram, MemorySink, Metrics,
};
use foc_parallel::{run_isolated_observed, Fault};
use foc_structures::{DeltaStructure, Structure, TupleOp};
use foc_wal::{DirStore, FsyncPolicy, Wal};

use crate::protocol::{
    anytime_result_frame, drained_frame, error_frame, parse_request, partial_frame, result_frame,
    shed_frame, update_frame, Answer, Mode, Request, PROTO_PROGRESSIVE,
};
use crate::telemetry;
use crate::trace::{trace_line, TailSampler, TraceLog};

/// Server configuration. `Default` binds an ephemeral loopback port
/// with conservative caps.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` = ephemeral port).
    pub addr: String,
    /// Requests evaluated concurrently; more wait in the queue.
    pub max_inflight: usize,
    /// Bounded admission queue; requests beyond it are shed.
    pub queue: usize,
    /// Server-wide memory watermark in bytes (`None` = no watermark).
    pub mem_limit: Option<u64>,
    /// How long `drain` waits for in-flight work before cancelling it.
    pub drain_timeout: Duration,
    /// Cap (and default) for request-supplied deadlines.
    pub max_timeout: Duration,
    /// Cap for request-supplied fuel (`None` = unlimited default).
    pub max_fuel: Option<u64>,
    /// Default engine (requests may override the kind, never the caps).
    pub engine: EngineKind,
    /// Worker threads per evaluation.
    pub threads: usize,
    /// Capacity of the shared memo cache, in entries.
    pub cache_capacity: usize,
    /// The hint sent in shed frames.
    pub retry_after_ms: u64,
    /// Bind address for the telemetry scrape listener (`/metrics`,
    /// `/healthz`, `/stats`); `None` = no listener.
    pub telemetry_addr: Option<String>,
    /// Request-scoped tracing: capture a span tree per request and
    /// tail-sample it. `false` skips span capture entirely (trace ids
    /// are still minted and echoed on frames).
    pub tracing: bool,
    /// Keep 1 in N well-behaved traces (anomalous ones are always
    /// kept); `0` keeps anomalous traces only, `1` keeps everything.
    pub trace_sample: u64,
    /// Seed for the trace sampler (deterministic keep positions).
    pub trace_seed: u64,
    /// Slow-query threshold; `None` derives it live as 4× the p99 of
    /// the server latency histogram (once it has ≥ 64 observations).
    pub slow_query: Option<Duration>,
    /// Append kept traces as JSON-lines to this file.
    pub trace_path: Option<PathBuf>,
    /// Directory for flight-recorder postmortem dumps (`None` = the
    /// ring is kept in memory but never written to disk).
    pub postmortem_dir: Option<PathBuf>,
    /// Write-ahead-log directory (`None` = no durability: commits live
    /// only in memory). With a WAL, startup recovers the directory's
    /// checkpoint + log tail — the recovered state *replaces* the
    /// loaded structure — and every effective commit is logged before
    /// its acknowledgement frame is sent (durable per `fsync`).
    pub wal_dir: Option<PathBuf>,
    /// When an appended WAL record becomes durable (see
    /// [`FsyncPolicy`]); `always` makes every acknowledgement imply
    /// durability.
    pub fsync: FsyncPolicy,
    /// Take a snapshot checkpoint (and reset the log) once the log
    /// grows past this many bytes, bounding recovery replay time.
    pub wal_checkpoint_bytes: u64,
    /// Longest accepted request line in bytes; an oversized line is
    /// answered with a `bad-request` error frame and skipped instead of
    /// growing the read buffer unboundedly.
    pub max_frame_bytes: usize,
    /// Test-only fault injection, forwarded to the evaluator builder
    /// (see `EvaluatorBuilder::fault_panic_element`).
    #[doc(hidden)]
    pub fault_panic_element: Option<u32>,
    /// Test-only fault injection: WAL appends fail after this many
    /// succeed, exercising the read-only degrade ladder.
    #[doc(hidden)]
    pub wal_fail_appends: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 4,
            queue: 16,
            mem_limit: None,
            drain_timeout: Duration::from_secs(5),
            max_timeout: Duration::from_secs(10),
            max_fuel: None,
            engine: EngineKind::Local,
            threads: 1,
            cache_capacity: foc_locality::cache::DEFAULT_CAPACITY,
            retry_after_ms: 50,
            telemetry_addr: None,
            tracing: true,
            trace_sample: 128,
            trace_seed: 0x5eed_f0c1,
            slow_query: None,
            trace_path: None,
            postmortem_dir: None,
            wal_dir: None,
            fsync: FsyncPolicy::Always,
            wal_checkpoint_bytes: 4 << 20,
            max_frame_bytes: 4 << 20,
            fault_panic_element: None,
            wal_fail_appends: None,
        }
    }
}

/// The admission posture the pressure ladder hands each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Posture {
    /// Refuse the request with a shed frame.
    shed: bool,
    /// Let the request use the shared memo cache.
    use_cache: bool,
    /// Run queries through the anytime driver even when the client did
    /// not ask (rung 3): a degraded answer beats a refusal.
    force_anytime: bool,
}

impl Posture {
    fn normal() -> Posture {
        Posture {
            shed: false,
            use_cache: true,
            force_anytime: false,
        }
    }
}

/// Admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    /// Evaluate now (the caller must call [`Gate::exit`] afterwards).
    Admitted,
    /// Refused: queue full, or the server is draining.
    Shed,
}

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    waiting: usize,
    draining: bool,
}

/// The bounded admission gate: at most `max_inflight` requests evaluate
/// at once, at most `queue` wait. Everything else is shed immediately —
/// `enter` never blocks unless a bounded queue slot was free, and drain
/// wakes every waiter.
///
/// The gate is also the single writer of the live admission gauges
/// (`server.inflight`, `server.queue_depth`, `server.inflight_peak`):
/// every transition happens under the gate mutex, so the gauges the
/// scrape endpoint exports always agree with the state the gate acts
/// on.
#[derive(Debug)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_inflight: usize,
    queue: usize,
    inflight_gauge: Gauge,
    inflight_peak: Gauge,
    queue_gauge: Gauge,
}

impl Gate {
    fn new(max_inflight: usize, queue: usize, metrics: &Metrics) -> Gate {
        Gate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue,
            inflight_gauge: metrics.gauge(names::SERVE_INFLIGHT),
            inflight_peak: metrics.gauge(names::SERVE_INFLIGHT_PEAK),
            queue_gauge: metrics.gauge(names::SERVE_QUEUE_DEPTH),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn enter(&self) -> Admission {
        let mut st = self.lock();
        if st.draining {
            return Admission::Shed;
        }
        if st.inflight < self.max_inflight {
            st.inflight += 1;
            self.inflight_peak.set_max(self.inflight_gauge.inc());
            return Admission::Admitted;
        }
        if st.waiting >= self.queue {
            return Admission::Shed;
        }
        st.waiting += 1;
        self.queue_gauge.inc();
        loop {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            if st.draining {
                st.waiting -= 1;
                self.queue_gauge.dec();
                return Admission::Shed;
            }
            if st.inflight < self.max_inflight {
                st.waiting -= 1;
                self.queue_gauge.dec();
                st.inflight += 1;
                self.inflight_peak.set_max(self.inflight_gauge.inc());
                return Admission::Admitted;
            }
        }
    }

    fn exit(&self) {
        let mut st = self.lock();
        st.inflight = st.inflight.saturating_sub(1);
        self.inflight_gauge.dec();
        drop(st);
        self.cv.notify_all();
    }

    fn start_drain(&self) {
        self.lock().draining = true;
        self.cv.notify_all();
    }

    /// Waits until no request is in flight, up to `deadline`. Returns
    /// the number still in flight when it gave up (0 = clean).
    fn wait_idle(&self, deadline: Instant) -> usize {
        let mut st = self.lock();
        while st.inflight > 0 {
            let now = Instant::now();
            if now >= deadline {
                return st.inflight;
            }
            let (next, _) = self
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = next;
        }
        0
    }
}

/// Everything a connection thread needs, shared by `Arc` (crate-public
/// so the telemetry listener can scrape it).
pub(crate) struct Shared {
    config: ServerConfig,
    /// The single writer: mutation requests serialise on this lock,
    /// apply their batch as a delta commit, migrate the shared caches,
    /// and publish the next snapshot.
    writer: Mutex<DeltaStructure>,
    /// The currently published snapshot. Queries clone the `Arc` at
    /// admission and evaluate against that epoch for their whole
    /// lifetime — commits never perturb an in-flight read.
    published: RwLock<Arc<Structure>>,
    preds: Predicates,
    covers: Arc<CoverStore>,
    cache: Arc<TermCache>,
    meter: MemoryMeter,
    gate: Gate,
    metrics: Metrics,
    cancel: CancelToken,
    shutdown: AtomicBool,
    /// Set at the very end of drain; tells the accept thread (which
    /// keeps shedding new connections while draining) to exit.
    accept_stop: AtomicBool,
    /// Memory-pressure ladder position: 0 = normal, 1 = cache halved,
    /// 2 = cache off, 3 = anytime forced (degraded answers over
    /// refusals), 4 = shedding.
    pressure: Mutex<u8>,
    /// Live per-pass cost history feeding the anytime time manager's
    /// slice planning, shared across every request.
    cost_model: CostModel,
    /// Peak of the server-wide byte account, for reports.
    peak_resident: AtomicU64,
    /// The server latency histogram, resolved once (also feeds the
    /// derived slow-query threshold).
    latency: Histogram,
    /// Ring of recent span closures and events, dumped as a postmortem
    /// on panic / drain interruption / shed-rung escalation.
    recorder: Arc<FlightRecorder>,
    /// Where kept traces go (in-memory ring + optional JSON-lines file).
    traces: TraceLog,
    /// The seeded 1-in-N keep decision for well-behaved requests.
    sampler: TailSampler,
    /// Server start, for uptime and trace-id minting.
    started: Instant,
    /// Per-process salt for trace ids (wall clock at startup).
    mint_seed: u64,
    trace_seq: AtomicU64,
    postmortem_seq: AtomicU64,
    /// The write-ahead log, when `--wal-dir` is configured. Appends
    /// happen under the writer lock (commit order = log order); this
    /// separate mutex only exists so the telemetry endpoints can read
    /// WAL health without contending on the writer.
    wal: Option<Mutex<WalState>>,
    /// The degrade ladder's first rung: a WAL IO failure flips this and
    /// the server refuses mutations (queries still answered) instead of
    /// acknowledging updates it cannot make durable. A second failure
    /// escalates to drain.
    wal_readonly: AtomicBool,
}

/// The WAL behind its health/append mutex, plus the test-only
/// fail-after-N fault injector.
struct WalState {
    wal: Wal<DirStore>,
    fail_appends: Option<u64>,
}

impl WalState {
    /// Appends one commit record, bumping the `server.wal.*` counters.
    fn append(
        &mut self,
        epoch: u64,
        fingerprint: u64,
        ops: &[TupleOp],
        m: &Metrics,
    ) -> std::io::Result<foc_wal::AppendInfo> {
        if let Some(left) = &mut self.fail_appends {
            if *left == 0 {
                return Err(std::io::Error::other("injected wal append failure"));
            }
            *left -= 1;
        }
        let info = self.wal.append_commit(epoch, fingerprint, ops)?;
        m.counter(names::SERVE_WAL_APPENDS).inc();
        m.counter(names::SERVE_WAL_BYTES).add(info.bytes);
        if info.synced {
            m.counter(names::SERVE_WAL_SYNCS).inc();
        }
        Ok(info)
    }
}

impl Shared {
    /// Observes the watermark at admission and walks the escalation
    /// ladder one step per over-limit observation: shrink the cache to
    /// half → evict everything and stop caching → force anytime
    /// evaluation (degraded answers beat refusals) → shed. Dropping
    /// back under the limit resets the ladder (caching resumes).
    /// Returns the admission posture for this request.
    fn apply_pressure(&self) -> Posture {
        let used = self.meter.used();
        self.peak_resident.fetch_max(used, Ordering::Relaxed);
        let Some(limit) = self.config.mem_limit else {
            return Posture::normal();
        };
        let mut level = self.pressure.lock().unwrap_or_else(|e| e.into_inner());
        if used <= limit {
            *level = 0;
            return Posture::normal();
        }
        let steps = self.metrics.counter(names::SERVE_PRESSURE_STEPS);
        match *level {
            0 => {
                *level = 1;
                steps.inc();
                let target = self.cache.len() / 2;
                self.cache.shrink_to(target);
                Posture {
                    shed: false,
                    use_cache: true,
                    force_anytime: false,
                }
            }
            1 => {
                *level = 2;
                steps.inc();
                self.cache.shrink_to(0);
                self.recorder
                    .event("pressure", "rung 2: cache evicted, caching off");
                Posture {
                    shed: false,
                    use_cache: false,
                    force_anytime: false,
                }
            }
            2 => {
                *level = 3;
                steps.inc();
                self.recorder.event(
                    "pressure",
                    "rung 3: anytime forced, queries answer best-so-far \
                     (counting evals prefer an ε-bounded estimate to a shed)",
                );
                Posture {
                    shed: false,
                    use_cache: false,
                    force_anytime: true,
                }
            }
            3 => {
                *level = 4;
                steps.inc();
                self.postmortem("pressure", "memory watermark escalated to the shed rung");
                Posture {
                    shed: true,
                    use_cache: false,
                    force_anytime: true,
                }
            }
            _ => Posture {
                shed: true,
                use_cache: false,
                force_anytime: true,
            },
        }
    }

    /// The shed hint, derived live instead of echoing a constant: the
    /// expected time for the backlog to clear — `(queue_depth + 1) ×
    /// latency p99` — floored at the configured `retry_after_ms`,
    /// capped at 5 s, with deterministic ±12.5% jitter keyed on the
    /// trace id so a shed burst's retries don't re-arrive in lockstep.
    /// Before the latency histogram has a p99, the configured value is
    /// the hint (plus jitter). A *saturated* p99 — the target rank fell
    /// in the histogram's +inf bucket, so the true p99 is only known to
    /// exceed the range — pins the hint at the cap: a backlog that slow
    /// must not be told to hurry back.
    fn retry_after_hint(&self, trace_id: &str) -> u64 {
        let depth = self.gate.lock().waiting as u64;
        let base = self.config.retry_after_ms.max(1);
        let cap = 5_000.max(base);
        let hint = match quantile_detail(&self.latency.snapshot(), 0.99) {
            Some((_, true)) => cap,
            Some((us, false)) => (depth + 1)
                .saturating_mul((us / 1_000).max(1))
                .max(base)
                .min(cap),
            None => base,
        };
        // FNV-1a over the trace id: stable across runs, different per
        // request.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in trace_id.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        let spread = (hint / 4).max(1);
        hint - spread / 2 + h % spread
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// The snapshot new queries are admitted under.
    fn snapshot(&self) -> Arc<Structure> {
        self.published
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Mints the request-scoped trace context: a process-unique hex
    /// trace id (startup salt + arrival sequence) paired with the
    /// client's request id.
    fn mint_trace(&self, request_id: &str) -> TraceContext {
        let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        TraceContext::new(format!("{:08x}-{seq:x}", self.mint_seed as u32), request_id)
    }

    /// The live slow-query threshold in microseconds: the configured
    /// value, or 4× the p99 of the latency histogram once it has seen
    /// enough requests to estimate one (`u64::MAX` before that — no
    /// request is "slow" until there is a population to be slow
    /// against). When the p99 is *saturated* (its rank fell in the
    /// +inf bucket) the estimate is only a lower bound on the true p99,
    /// so no multiple of it separates outliers from the norm — the
    /// threshold stays disabled rather than tagging (and tail-sampling)
    /// essentially every request.
    fn slow_threshold_micros(&self) -> u64 {
        if let Some(d) = self.config.slow_query {
            return d.as_micros() as u64;
        }
        let h = self.latency.snapshot();
        if h.total < 64 {
            return u64::MAX;
        }
        match quantile_detail(&h, 0.99) {
            Some((_, true)) | None => u64::MAX,
            Some((p99, false)) => p99.saturating_mul(4).max(1_000),
        }
    }

    /// Records a postmortem: bumps the counter, stamps the reason into
    /// the flight-recorder ring, and — when a postmortem directory is
    /// configured — dumps the ring to
    /// `foc-postmortem-<tag>-<n>.json`. Best-effort on the file side: a
    /// failing disk must not take serving down.
    fn postmortem(&self, tag: &str, reason: &str) {
        self.metrics.counter(names::SERVE_POSTMORTEMS).inc();
        self.recorder.event("postmortem", reason);
        if let Some(dir) = &self.config.postmortem_dir {
            let n = self.postmortem_seq.fetch_add(1, Ordering::Relaxed);
            let path = dir.join(format!("foc-postmortem-{tag}-{n}.json"));
            let _ = self.recorder.dump_to_file(&path, reason);
        }
    }

    /// The server's metrics registry (telemetry scrape surface).
    pub(crate) fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// WAL health for the telemetry surfaces: `(last fsync age in
    /// micros, log bytes since the last checkpoint)`. `None` when no
    /// WAL is configured.
    fn wal_health(&self) -> Option<(u64, u64)> {
        let wal = self.wal.as_ref()?;
        let st = wal.lock().unwrap_or_else(|e| e.into_inner());
        Some((st.wal.unsynced_age().as_micros() as u64, st.wal.log_bytes()))
    }

    /// Whether the WAL degrade ladder has reached read-only mode.
    fn wal_is_readonly(&self) -> bool {
        self.wal_readonly.load(Ordering::Acquire)
    }

    /// Best-effort final fsync of the WAL (drain and abrupt shutdown):
    /// under the `interval`/`never` policies this is what makes the
    /// tail of acknowledged-but-unsynced records durable.
    fn wal_flush(&self) {
        if let Some(walm) = &self.wal {
            let mut ws = walm.lock().unwrap_or_else(|e| e.into_inner());
            match ws.wal.sync() {
                Ok(()) => {
                    self.metrics.counter(names::SERVE_WAL_SYNCS).inc();
                }
                Err(_) => {
                    self.metrics.counter(names::SERVE_WAL_ERRORS).inc();
                }
            }
        }
    }

    /// Walks the WAL degrade ladder one rung: the first failure flips
    /// read-only mode (mutations refused, queries served); a failure
    /// while already read-only initiates drain — the server sheds
    /// everything and waits for the operator. Never panics.
    fn wal_degrade(&self, what: &str, err: &std::io::Error) {
        self.metrics.counter(names::SERVE_WAL_ERRORS).inc();
        if !self.wal_readonly.swap(true, Ordering::AcqRel) {
            self.postmortem(
                "wal",
                &format!("wal {what} failed ({err}); entering read-only mode"),
            );
        } else {
            self.postmortem(
                "wal",
                &format!("wal {what} failed in read-only mode ({err}); draining"),
            );
            self.shutdown.store(true, Ordering::Release);
            self.gate.start_drain();
        }
    }

    /// Tells the telemetry scrape loop to exit (set at the end of
    /// drain, together with the accept loop's stop flag).
    pub(crate) fn telemetry_stop(&self) -> bool {
        self.accept_stop.load(Ordering::Acquire)
    }

    /// The `/healthz` verdict: `200` while serving (including the
    /// degraded anytime rung, which still answers every request),
    /// `503` once draining or when the pressure ladder reached the
    /// shed rung.
    pub(crate) fn healthz(&self) -> (u16, &'static str, String) {
        let pressure = *self.pressure.lock().unwrap_or_else(|e| e.into_inner());
        // WAL health rides every body when a WAL is configured: last
        // fsync age and the log bytes a recovery would have to replay.
        let wal = match self.wal_health() {
            Some((age, bytes)) => format!(
                ",\"wal\":{{\"readonly\":{},\"last_sync_age_micros\":{age},\"log_bytes_since_checkpoint\":{bytes}}}",
                self.wal_is_readonly()
            ),
            None => String::new(),
        };
        if self.draining() {
            (
                503,
                "application/json",
                format!("{{\"status\":\"draining\"{wal}}}"),
            )
        } else if self.wal_is_readonly() {
            (
                503,
                "application/json",
                format!("{{\"status\":\"wal-readonly\",\"pressure\":{pressure}{wal}}}"),
            )
        } else if pressure >= 4 {
            (
                503,
                "application/json",
                format!("{{\"status\":\"shedding\",\"pressure\":{pressure}{wal}}}"),
            )
        } else if pressure == 3 {
            (
                200,
                "application/json",
                format!("{{\"status\":\"degraded\",\"pressure\":{pressure}{wal}}}"),
            )
        } else {
            (
                200,
                "application/json",
                format!("{{\"status\":\"ok\",\"pressure\":{pressure}{wal}}}"),
            )
        }
    }

    /// The `/stats` body: live serving state as one JSON object.
    pub(crate) fn stats_json(&self) -> String {
        let (inflight, queue_depth, draining) = {
            let st = self.gate.lock();
            (st.inflight, st.waiting, st.draining)
        };
        let pressure = *self.pressure.lock().unwrap_or_else(|e| e.into_inner());
        let hits = self.cache.hits();
        let misses = self.cache.misses();
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        let snap = self.metrics.snapshot();
        let (wal_age, wal_bytes) = self.wal_health().unwrap_or((0, 0));
        format!(
            "{{\"uptime_micros\":{},\"inflight\":{inflight},\"queue_depth\":{queue_depth},\"draining\":{draining},\"pressure\":{pressure},\"epoch\":{},\"requests\":{},\"shed\":{},\"errors\":{},\"interrupted\":{},\"slow_queries\":{},\"traces_kept\":{},\"postmortems\":{},\"cache_entries\":{},\"cache_bytes\":{},\"cache_hit_rate\":{hit_rate:.4},\"resident_bytes\":{},\"peak_resident_bytes\":{},\"wal_enabled\":{},\"wal_readonly\":{},\"wal_last_sync_age_micros\":{wal_age},\"wal_bytes_since_checkpoint\":{wal_bytes},\"wal_appends\":{},\"wal_checkpoints\":{},\"frames_oversized\":{},\"recovery_replayed\":{}}}",
            self.started.elapsed().as_micros(),
            self.snapshot().epoch(),
            snap.counter(names::SERVE_REQUESTS),
            snap.counter(names::SERVE_SHED),
            snap.counter(names::SERVE_ERRORS),
            snap.counter(names::SERVE_INTERRUPTED),
            snap.counter(names::SERVE_SLOW_QUERIES),
            snap.counter(names::SERVE_TRACES_KEPT),
            snap.counter(names::SERVE_POSTMORTEMS),
            self.cache.len(),
            self.cache.resident_bytes(),
            self.meter.used(),
            self.peak_resident.load(Ordering::Relaxed).max(self.meter.used()),
            self.wal.is_some(),
            self.wal_is_readonly(),
            snap.counter(names::SERVE_WAL_APPENDS),
            snap.counter(names::SERVE_WAL_CHECKPOINTS),
            snap.counter(names::SERVE_FRAMES_OVERSIZED),
            snap.counter(names::RECOVERY_REPLAYED),
        )
    }
}

/// Report returned by [`ServerHandle::drain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests still in flight when the drain deadline passed and the
    /// cancel token was pulled (0 = every request finished naturally).
    pub interrupted: u64,
    /// Wall time the drain took.
    pub drain: Duration,
    /// Connection threads joined (all of them — none leak).
    pub connections_joined: usize,
    /// The final flushed metrics (`server.*`, `cache.*`), taken after
    /// every thread was joined.
    pub final_metrics: foc_obs::MetricsSnapshot,
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::drain`] aborts in-flight work abruptly (the cancel
/// token is pulled) — call `drain` for the graceful path.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    telemetry_addr: Option<SocketAddr>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    telemetry_thread: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// Starts a server over `structure`. Returns once the listener is bound
/// (use [`ServerHandle::addr`] for the actual port).
pub fn start(structure: Structure, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let metrics = Metrics::new();
    // With a WAL directory, recover before serving: the checkpoint plus
    // the replayed log tail *replace* the loaded structure (they are
    // its durable history), and a fresh directory is seeded with an
    // initial checkpoint so the directory is self-contained from the
    // first acknowledged update on. A recovery failure — corrupt
    // checkpoint, epoch gap, fingerprint mismatch — refuses to serve.
    let (writer, wal) = match &config.wal_dir {
        Some(dir) => {
            let store = DirStore::open(dir)?;
            let (mut wal, rec) =
                Wal::recover(store, config.fsync, Some(structure)).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("wal recovery failed, refusing to serve: {e}"),
                    )
                })?;
            if !rec.had_checkpoint {
                wal.checkpoint(rec.delta.current())?;
                metrics.counter(names::SERVE_WAL_CHECKPOINTS).inc();
            }
            metrics.counter(names::RECOVERY_RUNS).inc();
            metrics.counter(names::RECOVERY_REPLAYED).add(rec.replayed);
            metrics.counter(names::RECOVERY_SKIPPED).add(rec.skipped);
            metrics
                .counter(names::RECOVERY_TRUNCATED_BYTES)
                .add(rec.truncated_bytes);
            let state = WalState {
                wal,
                fail_appends: config.wal_fail_appends,
            };
            (rec.delta, Some(Mutex::new(state)))
        }
        None => (DeltaStructure::new(structure), None),
    };
    let meter = MemoryMeter::new();
    meter.add(writer.current().resident_bytes());
    // Force the Gaifman graph now (evaluators would build it lazily on
    // the first request anyway) so its bytes are accounted up front;
    // delta commits then maintain it incrementally.
    let _ = writer.current().gaifman();
    let cache = Arc::new(
        TermCache::with_capacity(config.cache_capacity)
            .with_metrics(&metrics)
            .with_memory_meter(meter.clone()),
    );
    let published = RwLock::new(writer.snapshot());
    let traces = TraceLog::new(config.trace_path.as_deref())?;
    let mint_seed = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed)
        | 1;
    let shared = Arc::new(Shared {
        gate: Gate::new(config.max_inflight, config.queue, &metrics),
        sampler: TailSampler::new(config.trace_sample, config.trace_seed),
        config,
        writer: Mutex::new(writer),
        published,
        preds: Predicates::standard(),
        covers: Arc::new(CoverStore::default()),
        cache,
        meter,
        latency: metrics.histogram(names::SERVE_LATENCY_MICROS, &pow2_buckets(31)),
        cost_model: CostModel::new(&metrics),
        metrics,
        cancel: CancelToken::new(),
        shutdown: AtomicBool::new(false),
        accept_stop: AtomicBool::new(false),
        pressure: Mutex::new(0),
        peak_resident: AtomicU64::new(0),
        recorder: Arc::new(FlightRecorder::new(512)),
        traces,
        started: Instant::now(),
        mint_seed,
        trace_seq: AtomicU64::new(0),
        postmortem_seq: AtomicU64::new(0),
        wal,
        wal_readonly: AtomicBool::new(false),
    });
    let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let (telemetry_addr, telemetry_thread) = match shared.config.telemetry_addr.clone() {
        Some(taddr) => {
            let (a, t) = telemetry::start(&taddr, shared.clone())?;
            (Some(a), Some(t))
        }
        None => (None, None),
    };

    let accept_shared = shared.clone();
    let accept_conns = conns.clone();
    let accept_thread = std::thread::spawn(move || {
        accept_loop(&listener, &accept_shared, &accept_conns);
    });

    Ok(ServerHandle {
        shared,
        addr,
        telemetry_addr,
        accept_thread: Some(accept_thread),
        telemetry_thread,
        conns,
    })
}

/// The non-blocking accept loop. Admission decisions happen on the
/// connection threads, so nothing a client does can stall this loop; it
/// polls the shutdown flags between accepts. While the server drains,
/// new connections are still accepted but immediately refused with a
/// shed frame (so clients get a structured signal, not a hang); the
/// loop exits only once drain flips `accept_stop`.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        if shared.accept_stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.draining() {
                    refuse(stream, shared);
                    continue;
                }
                let conn_shared = shared.clone();
                let handle = std::thread::spawn(move || {
                    let _ = serve_connection(stream, &conn_shared);
                });
                conns.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Sheds a connection accepted during drain: one shed frame, then close.
/// The connection never carried a request line, so the frame's `id` is
/// the `"-"` placeholder (the trace id is still minted — the refusal is
/// observable in the flight recorder).
fn refuse(mut stream: TcpStream, shared: &Shared) {
    shared.metrics.counter(names::SERVE_SHED).inc();
    let tc = shared.mint_trace("-");
    shared
        .recorder
        .event("connection.refused", format!("trace={}", tc.trace_id));
    let _ = writeln!(
        stream,
        "{}",
        shed_frame("-", &tc.trace_id, shared.retry_after_hint(&tc.trace_id))
    );
}

/// Reads lines across read timeouts without losing partial data
/// (`BufRead::read_line` may drop buffered bytes on `WouldBlock`),
/// bounding the accumulated line at `max` bytes: an oversized line is
/// reported once and its remaining bytes are discarded up to the next
/// newline, so a hostile or confused client cannot grow the buffer
/// unboundedly.
struct LineReader<R> {
    inner: R,
    acc: Vec<u8>,
    /// Longest accepted line (`ServerConfig::max_frame_bytes`).
    max: usize,
    /// Set after an overflow: drop bytes until the next newline.
    skipping: bool,
}

enum LineEvent {
    Line(String),
    Eof,
    /// Read timeout: no complete line yet; poll the shutdown flag.
    Idle,
    /// The current line exceeded the frame bound; its bytes are being
    /// discarded. Reported exactly once per oversized line.
    Oversized,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R, max: usize) -> LineReader<R> {
        LineReader {
            inner,
            acc: Vec::new(),
            max: max.max(1),
            skipping: false,
        }
    }

    fn next(&mut self) -> LineEvent {
        loop {
            if let Some(i) = self.acc.iter().position(|&b| b == b'\n') {
                let rest = self.acc.split_off(i + 1);
                let mut line = std::mem::replace(&mut self.acc, rest);
                if self.skipping {
                    // The tail of an oversized line; drop it silently.
                    self.skipping = false;
                    continue;
                }
                line.pop(); // '\n'
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return LineEvent::Line(String::from_utf8_lossy(&line).into_owned());
            }
            if self.skipping {
                self.acc.clear();
            } else if self.acc.len() > self.max {
                self.acc.clear();
                self.skipping = true;
                return LineEvent::Oversized;
            }
            let mut buf = [0u8; 4096];
            match self.inner.read(&mut buf) {
                Ok(0) => return LineEvent::Eof,
                Ok(n) => self.acc.extend_from_slice(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return LineEvent::Idle;
                }
                Err(_) => return LineEvent::Eof,
            }
        }
    }
}

/// One connection: read request lines, answer each with exactly one
/// frame, stop at EOF or drain.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    // One frame per line in each direction: Nagle only adds delayed-ACK
    // stalls to the request/response rhythm.
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(25)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = LineReader::new(BufReader::new(stream), shared.config.max_frame_bytes);
    loop {
        if shared.draining() {
            let _ = writeln!(writer, "{}", drained_frame());
            return Ok(());
        }
        match reader.next() {
            LineEvent::Eof => return Ok(()),
            LineEvent::Idle => continue,
            LineEvent::Oversized => {
                shared.metrics.counter(names::SERVE_FRAMES_OVERSIZED).inc();
                shared.metrics.counter(names::SERVE_ERRORS).inc();
                let tc = shared.mint_trace("-");
                shared.recorder.event(
                    "request.oversized",
                    format!(
                        "trace={} line exceeded {} bytes",
                        tc.trace_id, shared.config.max_frame_bytes
                    ),
                );
                let _ = writeln!(
                    writer,
                    "{}",
                    error_frame(
                        "-",
                        &tc.trace_id,
                        "bad-request",
                        None,
                        &format!(
                            "request line exceeds the {}-byte frame bound",
                            shared.config.max_frame_bytes
                        ),
                    )
                );
            }
            LineEvent::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let mut io_err: Option<std::io::Error> = None;
                serve_line(&line, shared, &mut |frame| {
                    if io_err.is_none() {
                        if let Err(e) = writeln!(writer, "{frame}") {
                            io_err = Some(e);
                        }
                    }
                });
                if let Some(e) = io_err {
                    return Err(e);
                }
            }
        }
    }
}

/// Admission + evaluation of one request line. Frames go out through
/// `emit` as they are produced — exactly one terminal frame per line,
/// preceded by zero or more progressive `partial` frames for anytime
/// requests. Every path mints a [`TraceContext`] first, so each frame
/// the server emits for this line — partial, result, error, or shed —
/// carries the same `trace_id`.
fn serve_line(line: &str, shared: &Arc<Shared>, emit: &mut dyn FnMut(&str)) {
    let m = &shared.metrics;
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(f) => {
            let tc = shared.mint_trace(&f.id);
            m.counter(names::SERVE_ERRORS).inc();
            shared.recorder.event(
                "request.rejected",
                format!("trace={} class={}", tc.trace_id, f.class),
            );
            emit(&error_frame(&f.id, &tc.trace_id, f.class, None, &f.message));
            return;
        }
    };
    let tc = shared.mint_trace(&req.id);
    // Watermark first: under sustained pressure the ladder ends in shed,
    // which must not consume a gate slot.
    let posture = shared.apply_pressure();
    if posture.shed {
        m.counter(names::SERVE_SHED).inc();
        emit(&shed_frame(
            &req.id,
            &tc.trace_id,
            shared.retry_after_hint(&tc.trace_id),
        ));
        return;
    }
    match shared.gate.enter() {
        Admission::Shed => {
            m.counter(names::SERVE_SHED).inc();
            shared
                .recorder
                .event("request.shed", format!("trace={}", tc.trace_id));
            emit(&shed_frame(
                &req.id,
                &tc.trace_id,
                shared.retry_after_hint(&tc.trace_id),
            ));
        }
        Admission::Admitted => {
            m.counter(names::SERVE_REQUESTS).inc();
            if req.mode.is_mutation() {
                let frame = apply_update(&req, &tc, shared);
                emit(&frame);
            } else {
                // Snapshot-consistent read: the epoch is pinned here, at
                // admission, and held for the whole evaluation.
                let snapshot = shared.snapshot();
                evaluate_request(&req, &tc, posture, &snapshot, shared, emit);
            }
            shared.gate.exit();
        }
    }
}

/// Applies a mutation request: serialise on the writer lock, commit the
/// batch as one delta, migrate the shared term cache and cover store to
/// the new epoch (recomputing only dirty balls / clusters), publish the
/// snapshot, then retire the old epoch's cache entries. Readers
/// admitted before the publish keep evaluating against their pinned
/// snapshot; entries they re-insert under the retired fingerprint are
/// bounded by the caches' capacity and age out via their normal
/// eviction.
fn apply_update(req: &Request, tc: &TraceContext, shared: &Arc<Shared>) -> String {
    let m = &shared.metrics;
    // Degrade ladder rung 1: with the WAL read-only, an update could be
    // applied but never made durable — refuse it instead of lying.
    if shared.wal.is_some() && shared.wal_is_readonly() {
        m.counter(names::SERVE_ERRORS).inc();
        return error_frame(
            &req.id,
            &tc.trace_id,
            "read-only",
            None,
            "write-ahead log degraded: server is read-only, mutations refused",
        );
    }
    let ops: Vec<TupleOp> = req
        .ops
        .iter()
        .map(|o| {
            if o.insert {
                TupleOp::insert(&o.rel, &o.tuple)
            } else {
                TupleOp::delete(&o.rel, &o.tuple)
            }
        })
        .collect();
    let t0 = Instant::now();
    let mut writer = shared.writer.lock().unwrap_or_else(|e| e.into_inner());
    let old = writer.snapshot();
    match writer.apply(&ops) {
        Err(e) => {
            m.counter(names::SERVE_ERRORS).inc();
            error_frame(&req.id, &tc.trace_id, "mutation", None, &e.to_string())
        }
        Ok(info) => {
            let epoch = info.epoch;
            if info.changed > 0 {
                let new = writer.snapshot();
                // Durable-ack: the commit record must be durable (per
                // the fsync policy) before anything — the published
                // snapshot or the acknowledgement frame — can observe
                // the commit. Appending under the writer lock makes log
                // order equal commit order.
                if let Some(walm) = &shared.wal {
                    let mut ws = walm.lock().unwrap_or_else(|e| e.into_inner());
                    if let Err(e) = ws.append(epoch, new.fingerprint(), &ops, m) {
                        // Roll the in-memory commit back: the served
                        // state must never run ahead of the log.
                        drop(ws);
                        writer.reset_to(old);
                        drop(writer);
                        shared.wal_degrade("append", &e);
                        m.counter(names::SERVE_ERRORS).inc();
                        return error_frame(
                            &req.id,
                            &tc.trace_id,
                            "read-only",
                            None,
                            &format!(
                                "wal append failed ({e}): commit rolled back, server is now read-only"
                            ),
                        );
                    }
                    // Bound recovery replay: checkpoint once the log
                    // outgrows its budget. The commit above is already
                    // durable, so a checkpoint failure degrades the
                    // ladder but still acknowledges this update.
                    if ws.wal.log_bytes() >= shared.config.wal_checkpoint_bytes {
                        match ws.wal.checkpoint(&new) {
                            Ok(()) => {
                                m.counter(names::SERVE_WAL_CHECKPOINTS).inc();
                            }
                            Err(e) => {
                                drop(ws);
                                shared.wal_degrade("checkpoint", &e);
                            }
                        }
                    }
                }
                let stats = migrate_cache(&shared.cache, &old, &new, &info.touched, &shared.preds);
                shared.covers.migrate(&old, &new, &info.touched);
                *shared.published.write().unwrap_or_else(|e| e.into_inner()) = new.clone();
                shared.cache.evict_structure(old.fingerprint());
                shared.covers.retire(old.fingerprint());
                shared.meter.add(new.resident_bytes());
                shared.meter.sub(old.resident_bytes());
                m.counter(names::SERVE_CACHE_MIGRATED)
                    .add(stats.migrated as u64);
            }
            drop(writer);
            m.counter(names::SERVE_UPDATES).inc();
            m.counter(names::SERVE_TUPLES_CHANGED)
                .add(info.changed as u64);
            let micros = t0.elapsed().as_micros() as u64;
            shared.latency.observe(micros);
            shared.recorder.event(
                "update.commit",
                format!(
                    "trace={} epoch={epoch} changed={}",
                    tc.trace_id, info.changed
                ),
            );
            update_frame(&req.id, &tc.trace_id, req.mode, epoch, info.changed, micros)
        }
    }
}

/// Clamps the request's budget, builds the evaluator, runs it isolated,
/// and emits the response frames. Anytime requests (`"anytime":true`,
/// or any query while the pressure ladder sits on the force-anytime
/// rung) run through the deepening driver: each completed pass streams
/// a `partial` frame to proto-2 clients and the terminal result carries
/// the confidence tag. When tracing is on, the whole span tree of the
/// session is captured in a per-request [`MemorySink`] and the tail
/// sampler decides afterwards — once the outcome is known — whether to
/// keep it (always for errors / panics / interruptions / slow queries;
/// 1-in-N for the rest).
fn evaluate_request(
    req: &Request,
    tc: &TraceContext,
    posture: Posture,
    snapshot: &Arc<Structure>,
    shared: &Arc<Shared>,
    emit: &mut dyn FnMut(&str),
) {
    let cfg = &shared.config;
    let m = &shared.metrics;
    let use_cache = posture.use_cache;
    let anytime = req.anytime || posture.force_anytime;
    let deadline = match req.timeout {
        Some(t) => t.min(cfg.max_timeout),
        None => cfg.max_timeout,
    };
    let mut budget = Budget::unlimited()
        .with_deadline(deadline)
        .with_cancel(shared.cancel.clone())
        .with_trace(tc.clone());
    match (req.fuel, cfg.max_fuel) {
        (Some(f), Some(cap)) => budget = budget.with_fuel(f.min(cap)),
        (Some(f), None) => budget = budget.with_fuel(f),
        (None, Some(cap)) => budget = budget.with_fuel(cap),
        (None, None) => {}
    }
    if let Some(limit) = req.mem_limit {
        let clamped = match cfg.mem_limit {
            Some(cap) => limit.min(cap),
            None => limit,
        };
        budget = budget.with_memory(shared.meter.clone(), clamped);
    }
    let mut builder = Evaluator::builder()
        .kind(req.engine.unwrap_or(cfg.engine))
        .threads(cfg.threads)
        .degrade(if anytime {
            DegradePolicy::Anytime
        } else {
            DegradePolicy::FallThrough
        })
        .budget(budget)
        .fault_panic_element(cfg.fault_panic_element);
    if req.approx {
        // The estimator knob rides the evaluator: the direct approx
        // path consumes it below, and an approx+anytime request feeds
        // the requested ε into the ladder's approx rung.
        builder = builder.approx(match req.epsilon {
            Some(eps) => ApproxConfig::with_epsilon(eps),
            None => ApproxConfig::default(),
        });
    }
    if use_cache {
        builder = builder.shared_cache(shared.cache.clone());
    } else {
        builder = builder.cache(false);
    }
    builder = builder.shared_covers(shared.covers.clone());
    // Span capture: a per-request memory sink (the candidate trace) and
    // the server-wide flight recorder (the last-moments ring). Attached
    // only when tracing is on — sinks are what enable span recording,
    // so `tracing: false` keeps the request on the spans-disabled fast
    // path.
    let spans = cfg.tracing.then(MemorySink::shared);
    if let Some(s) = &spans {
        builder = builder.sink(s.clone()).sink(shared.recorder.clone());
    }
    let ev = match builder.build() {
        Ok(ev) => ev,
        Err(e) => {
            m.counter(names::SERVE_ERRORS).inc();
            emit(&error_frame(
                &req.id,
                &tc.trace_id,
                "config",
                None,
                &e.to_string(),
            ));
            return;
        }
    };

    if anytime {
        m.counter(names::SERVE_ANYTIME).inc();
    }
    let t0 = Instant::now();
    // A worker panic is the flight recorder's moment: dump the ring
    // before the error frame is even rendered, while the evidence of
    // what led up to it is still in the buffer.
    let outcome = run_isolated_observed(
        || {
            if anytime {
                run_query_anytime(&ev, req, snapshot, shared, tc, emit).map(|(a, c)| (a, Some(c)))
            } else if req.approx {
                run_query_approx(&ev, req, snapshot, shared).map(|(a, c)| (a, Some(c)))
            } else {
                run_query(&ev, req, snapshot).map(|a| (a, None))
            }
        },
        |p| {
            shared.postmortem(
                "panic",
                &format!("worker panic in trace {}: {}", tc.trace_id, p.payload),
            );
        },
    );
    let micros = t0.elapsed().as_micros() as u64;
    shared.latency.observe(micros);
    let (frame, outcome_label) = match outcome {
        Ok((answer, Some(confidence))) => (
            anytime_result_frame(
                req.proto,
                &req.id,
                &tc.trace_id,
                req.mode,
                answer,
                &confidence,
                snapshot.epoch(),
                micros,
            ),
            "ok",
        ),
        Ok((answer, None)) => (
            result_frame(
                &req.id,
                &tc.trace_id,
                req.mode,
                answer,
                snapshot.epoch(),
                micros,
            ),
            "ok",
        ),
        Err(Fault::Error(RequestError::Parse(msg))) => {
            m.counter(names::SERVE_ERRORS).inc();
            (
                error_frame(&req.id, &tc.trace_id, "parse", None, &msg),
                "error",
            )
        }
        Err(Fault::Error(RequestError::Engine(e))) => {
            m.counter(names::SERVE_ERRORS).inc();
            if let Error::Interrupted(i) = &e {
                m.counter(names::SERVE_INTERRUPTED).inc();
                if shared.draining() && i.reason == TripReason::Cancelled {
                    m.counter(names::SERVE_DRAIN_INTERRUPTED).inc();
                }
                (
                    error_frame(
                        &req.id,
                        &tc.trace_id,
                        "interrupted",
                        Some(&i.reason.to_string()),
                        &e.to_string(),
                    ),
                    "interrupted",
                )
            } else {
                // Panics contained below the engine boundary (the
                // evaluators' own isolation) surface as
                // `WorkerPanicked`; count them — and dump a postmortem —
                // just like the ones caught by `run_isolated` here.
                let label = if matches!(e, Error::WorkerPanicked { .. }) {
                    m.counter(names::SERVE_PANICS).inc();
                    shared.postmortem(
                        "panic",
                        &format!("worker panic in trace {}: {e}", tc.trace_id),
                    );
                    "panic"
                } else {
                    "error"
                };
                (
                    error_frame(&req.id, &tc.trace_id, classify(&e), None, &e.to_string()),
                    label,
                )
            }
        }
        Err(Fault::Panic(p)) => {
            m.counter(names::SERVE_ERRORS).inc();
            m.counter(names::SERVE_PANICS).inc();
            (
                error_frame(&req.id, &tc.trace_id, "panic", None, &p.payload),
                "panic",
            )
        }
    };
    let slow = micros >= shared.slow_threshold_micros();
    if slow {
        m.counter(names::SERVE_SLOW_QUERIES).inc();
    }
    if let Some(sink) = &spans {
        // Tail decision: anomalous outcomes are always kept, the rest
        // ride the seeded 1-in-N sampler.
        let anomalous = outcome_label != "ok" || slow;
        let sampled = if anomalous {
            "tail"
        } else if shared.sampler.keep_random() {
            "random"
        } else {
            ""
        };
        if sampled.is_empty() {
            m.counter(names::SERVE_TRACES_DROPPED).inc();
        } else {
            m.counter(names::SERVE_TRACES_KEPT).inc();
            let label = if slow && outcome_label == "ok" {
                "slow"
            } else {
                outcome_label
            };
            shared.traces.emit(trace_line(
                tc,
                req.mode.name(),
                &req.query,
                snapshot.epoch(),
                micros,
                label,
                sampled,
                &sink.spans(),
            ));
        }
    }
    emit(&frame);
}

/// Why one request failed below the panic boundary.
enum RequestError {
    Parse(String),
    Engine(Error),
}

/// The anytime query path: the deepening driver with the server's
/// shared [`CostModel`] feeding slice planning. Each pass that banked
/// an answer streams a `partial` frame to proto-2 clients (proto-1
/// requests forced onto this path by the pressure ladder stay
/// one-frame: the progressive dialect is opt-in).
fn run_query_anytime(
    ev: &Evaluator,
    req: &Request,
    a: &Structure,
    shared: &Shared,
    tc: &TraceContext,
    emit: &mut dyn FnMut(&str),
) -> Result<(Answer, Confidence), RequestError> {
    let cfg = AnytimeConfig::default();
    let stream = req.proto >= PROTO_PROGRESSIVE;
    let m = &shared.metrics;
    let mut on_pass = |r: &PassReport| {
        if !stream {
            return;
        }
        if let (Some(v), Some(c)) = (r.value, r.confidence.as_ref()) {
            let answer = match v {
                AnswerValue::Bool(b) => Answer::Bool(b),
                AnswerValue::Int(i) => Answer::Int(i),
            };
            m.counter(names::SERVE_PARTIAL_FRAMES).inc();
            emit(&partial_frame(
                &req.id,
                &tc.trace_id,
                req.mode,
                r.pass.name(),
                answer,
                c,
                r.micros,
            ));
        }
    };
    match req.mode {
        Mode::Check => {
            let f = parse_formula(&req.query).map_err(|e| RequestError::Parse(e.to_string()))?;
            ev.check_sentence_anytime(a, &f, &cfg, Some(&shared.cost_model), Some(&mut on_pass))
                .map(|out| (Answer::Bool(out.value), out.confidence))
                .map_err(RequestError::Engine)
        }
        Mode::Eval => {
            let t = parse_term(&req.query).map_err(|e| RequestError::Parse(e.to_string()))?;
            ev.eval_ground_anytime(a, &t, &cfg, Some(&shared.cost_model), Some(&mut on_pass))
                .map(|out| (Answer::Int(out.value), out.confidence))
                .map_err(RequestError::Engine)
        }
        Mode::Update | Mode::Batch => Err(RequestError::Parse(
            "mutation mode routed to the query path".to_string(),
        )),
    }
}

/// The direct approximate path (`"approx":true` without anytime): the
/// `(ε, δ)` estimator answers the counting eval with a bounded
/// estimate, recorded under the `engine.approx.*` metrics. An
/// exhaustive fallthrough (assignment space no larger than the sample
/// size) is the true count and is tagged `exact` with a zero bound.
fn run_query_approx(
    ev: &Evaluator,
    req: &Request,
    a: &Structure,
    shared: &Shared,
) -> Result<(Answer, Confidence), RequestError> {
    match req.mode {
        Mode::Eval => {
            let t = parse_term(&req.query).map_err(|e| RequestError::Parse(e.to_string()))?;
            let v = ev.approx_count(a, &t).map_err(RequestError::Engine)?;
            shared
                .cost_model
                .record_approx(v.samples, v.error_bound, v.exhaustive);
            let confidence = if v.exhaustive {
                Confidence::Exact
            } else {
                Confidence::Approximate {
                    error_bound: v.error_bound,
                }
            };
            Ok((Answer::Int(v.estimate), confidence))
        }
        // The parser refuses `approx` on every other mode.
        _ => Err(RequestError::Parse(
            "approx applies to eval requests only".to_string(),
        )),
    }
}

fn run_query(ev: &Evaluator, req: &Request, a: &Structure) -> Result<Answer, RequestError> {
    match req.mode {
        Mode::Check => {
            let f = parse_formula(&req.query).map_err(|e| RequestError::Parse(e.to_string()))?;
            ev.check_sentence(a, &f)
                .map(Answer::Bool)
                .map_err(RequestError::Engine)
        }
        Mode::Eval => {
            let t = parse_term(&req.query).map_err(|e| RequestError::Parse(e.to_string()))?;
            ev.eval_ground(a, &t)
                .map(Answer::Int)
                .map_err(RequestError::Engine)
        }
        // Mutations never reach the query path (`serve_line` routes them
        // to `apply_update` before an evaluator is built).
        Mode::Update | Mode::Batch => Err(RequestError::Parse(
            "mutation mode routed to the query path".to_string(),
        )),
    }
}

/// Stable error-class names for the error frame (aligned with the
/// differential harness's taxonomy where the classes overlap).
fn classify(e: &Error) -> &'static str {
    match e {
        Error::NotFoc1(_) => "not-foc1",
        Error::Eval(_) => "eval",
        Error::Locality(_) => "locality",
        Error::Unsupported(_) => "unsupported",
        Error::Config(_) => "config",
        Error::Interrupted(_) => "interrupted",
        Error::WorkerPanicked { .. } => "panic",
    }
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound telemetry address, when a scrape listener was
    /// configured (resolves `:0` to the actual port).
    pub fn telemetry_addr(&self) -> Option<SocketAddr> {
        self.telemetry_addr
    }

    /// The kept traces still in the in-memory ring (one JSON line per
    /// trace, oldest first). The same lines go to
    /// `ServerConfig::trace_path` when configured.
    pub fn recent_traces(&self) -> Vec<String> {
        self.shared.traces.recent()
    }

    /// The flight recorder: the ring of recent span closures and
    /// events behind postmortem dumps.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.shared.recorder
    }

    /// The server's metrics registry (`server.*`, plus the shared
    /// cache's `cache.*` / `engine.cache.evictions` mirrors).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Current server-wide byte account (structure + cache occupancy).
    pub fn resident_bytes(&self) -> u64 {
        self.shared.meter.used()
    }

    /// Peak of the byte account since startup.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.shared
            .peak_resident
            .load(Ordering::Relaxed)
            .max(self.shared.meter.used())
    }

    /// Graceful drain: stop accepting, shed queued work, let in-flight
    /// requests finish until the drain deadline, then cancel whatever
    /// remains, join every thread, and flush metrics. Idempotent by
    /// construction (the handle is consumed).
    pub fn drain(mut self) -> DrainReport {
        let t0 = Instant::now();
        let m = &self.shared.metrics;
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.gate.start_drain();
        self.shared.recorder.event("drain", "drain started");
        let deadline = t0 + self.shared.config.drain_timeout;
        let leftover = self.shared.gate.wait_idle(deadline);
        if leftover > 0 {
            // Past the deadline: pull the cancel token so in-flight
            // guards trip at their next check, then wait again (briefly
            // unbounded — a guard-checked evaluation always observes the
            // token). That interruption is a postmortem moment: dump
            // the flight recorder before the evidence scrolls away.
            self.shared.postmortem(
                "drain",
                &format!("drain deadline passed with {leftover} requests in flight"),
            );
            self.shared.cancel.cancel();
            self.shared
                .gate
                .wait_idle(Instant::now() + Duration::from_secs(60));
        }
        self.shared.accept_stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.telemetry_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = {
            let mut guard = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        let connections_joined = handles.len();
        for h in handles {
            let _ = h.join();
        }
        self.shared.wal_flush();
        let drain = t0.elapsed();
        m.counter(names::SERVE_DRAIN_NANOS)
            .add(drain.as_nanos() as u64);
        let final_metrics = m.snapshot();
        DrainReport {
            interrupted: final_metrics.counter(names::SERVE_DRAIN_INTERRUPTED),
            drain,
            connections_joined,
            final_metrics,
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Abrupt shutdown path (drain consumes the handle, so this only
        // runs when the handle was dropped without draining): cancel
        // everything and reap the accept thread so tests cannot leak it.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.gate.start_drain();
        self.shared.cancel.cancel();
        self.shared.accept_stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.telemetry_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = {
            let mut guard = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        self.shared.wal_flush();
    }
}
