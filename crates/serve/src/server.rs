//! The resilient query server: admission control, per-request budgets,
//! panic isolation, a memory-pressure ladder, and graceful drain.
//!
//! One `std::net::TcpListener`, one accept thread (non-blocking, so it
//! can never be wedged by a slow client or a full admission queue), one
//! thread per connection. The structure is loaded once; every request
//! builds a cheap [`Evaluator`] over it, sharing one [`TermCache`]
//! across all sessions (the "warm pool" — the expensive state is the
//! memoised values, not the evaluator structs).
//!
//! Failure containment, per request:
//! * the request's deadline/fuel are clamped by the server caps and
//!   armed as a [`foc_guard::Budget`] (plus the drain [`CancelToken`]
//!   and an optional request-level memory cap against the server-wide
//!   [`MemoryMeter`]);
//! * evaluation runs under [`foc_parallel::run_isolated`], so a
//!   panicking query is answered with a structured error frame while
//!   the connection thread survives;
//! * admission is a bounded gate: over `max_inflight` requests wait in
//!   a bounded queue; over `queue` waiters, the request is shed with a
//!   `retry_after_ms` hint — nothing ever blocks unboundedly.
//!
//! Memory watermark escalation (server-wide, observed at admission):
//! shrink the shared cache to half → evict it entirely and stop caching
//! → shed requests until the meter drops below the limit. Requests can
//! additionally carry their own byte cap, which arms
//! `TripReason::Memory` on the guard and surfaces as an
//! `"interrupted"` error frame.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use foc_core::{DegradePolicy, EngineKind, Error, Evaluator};
use foc_covers::CoverStore;
use foc_guard::{Budget, CancelToken, MemoryMeter, TripReason};
use foc_locality::{migrate_cache, TermCache};
use foc_logic::parse::{parse_formula, parse_term};
use foc_logic::Predicates;
use foc_obs::{names, pow2_buckets, Metrics};
use foc_parallel::{run_isolated, Fault};
use foc_structures::{DeltaStructure, Structure, TupleOp};

use crate::protocol::{
    drained_frame, error_frame, parse_request, result_frame, shed_frame, update_frame, Answer,
    Mode, Request,
};

/// Server configuration. `Default` binds an ephemeral loopback port
/// with conservative caps.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` = ephemeral port).
    pub addr: String,
    /// Requests evaluated concurrently; more wait in the queue.
    pub max_inflight: usize,
    /// Bounded admission queue; requests beyond it are shed.
    pub queue: usize,
    /// Server-wide memory watermark in bytes (`None` = no watermark).
    pub mem_limit: Option<u64>,
    /// How long `drain` waits for in-flight work before cancelling it.
    pub drain_timeout: Duration,
    /// Cap (and default) for request-supplied deadlines.
    pub max_timeout: Duration,
    /// Cap for request-supplied fuel (`None` = unlimited default).
    pub max_fuel: Option<u64>,
    /// Default engine (requests may override the kind, never the caps).
    pub engine: EngineKind,
    /// Worker threads per evaluation.
    pub threads: usize,
    /// Capacity of the shared memo cache, in entries.
    pub cache_capacity: usize,
    /// The hint sent in shed frames.
    pub retry_after_ms: u64,
    /// Test-only fault injection, forwarded to the evaluator builder
    /// (see `EvaluatorBuilder::fault_panic_element`).
    #[doc(hidden)]
    pub fault_panic_element: Option<u32>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 4,
            queue: 16,
            mem_limit: None,
            drain_timeout: Duration::from_secs(5),
            max_timeout: Duration::from_secs(10),
            max_fuel: None,
            engine: EngineKind::Local,
            threads: 1,
            cache_capacity: foc_locality::cache::DEFAULT_CAPACITY,
            retry_after_ms: 50,
            fault_panic_element: None,
        }
    }
}

/// Admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    /// Evaluate now (the caller must call [`Gate::exit`] afterwards).
    Admitted,
    /// Refused: queue full, or the server is draining.
    Shed,
}

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    waiting: usize,
    draining: bool,
}

/// The bounded admission gate: at most `max_inflight` requests evaluate
/// at once, at most `queue` wait. Everything else is shed immediately —
/// `enter` never blocks unless a bounded queue slot was free, and drain
/// wakes every waiter.
#[derive(Debug)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_inflight: usize,
    queue: usize,
}

impl Gate {
    fn new(max_inflight: usize, queue: usize) -> Gate {
        Gate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn enter(&self) -> Admission {
        let mut st = self.lock();
        if st.draining {
            return Admission::Shed;
        }
        if st.inflight < self.max_inflight {
            st.inflight += 1;
            return Admission::Admitted;
        }
        if st.waiting >= self.queue {
            return Admission::Shed;
        }
        st.waiting += 1;
        loop {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            if st.draining {
                st.waiting -= 1;
                return Admission::Shed;
            }
            if st.inflight < self.max_inflight {
                st.waiting -= 1;
                st.inflight += 1;
                return Admission::Admitted;
            }
        }
    }

    fn exit(&self) {
        let mut st = self.lock();
        st.inflight = st.inflight.saturating_sub(1);
        drop(st);
        self.cv.notify_all();
    }

    fn start_drain(&self) {
        self.lock().draining = true;
        self.cv.notify_all();
    }

    /// Waits until no request is in flight, up to `deadline`. Returns
    /// the number still in flight when it gave up (0 = clean).
    fn wait_idle(&self, deadline: Instant) -> usize {
        let mut st = self.lock();
        while st.inflight > 0 {
            let now = Instant::now();
            if now >= deadline {
                return st.inflight;
            }
            let (next, _) = self
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = next;
        }
        0
    }
}

/// Everything a connection thread needs, shared by `Arc`.
struct Shared {
    config: ServerConfig,
    /// The single writer: mutation requests serialise on this lock,
    /// apply their batch as a delta commit, migrate the shared caches,
    /// and publish the next snapshot.
    writer: Mutex<DeltaStructure>,
    /// The currently published snapshot. Queries clone the `Arc` at
    /// admission and evaluate against that epoch for their whole
    /// lifetime — commits never perturb an in-flight read.
    published: RwLock<Arc<Structure>>,
    preds: Predicates,
    covers: Arc<CoverStore>,
    cache: Arc<TermCache>,
    meter: MemoryMeter,
    gate: Gate,
    metrics: Metrics,
    cancel: CancelToken,
    shutdown: AtomicBool,
    /// Set at the very end of drain; tells the accept thread (which
    /// keeps shedding new connections while draining) to exit.
    accept_stop: AtomicBool,
    /// Memory-pressure ladder position: 0 = normal, 1 = cache halved,
    /// 2 = cache off, 3 = shedding.
    pressure: Mutex<u8>,
    /// Peak of the server-wide byte account, for reports.
    peak_resident: AtomicU64,
}

impl Shared {
    /// Observes the watermark at admission and walks the escalation
    /// ladder one step per over-limit observation: shrink the cache to
    /// half → evict everything and stop caching → shed. Dropping back
    /// under the limit resets the ladder (caching resumes). Returns
    /// `(shed, use_cache)`.
    fn apply_pressure(&self) -> (bool, bool) {
        let used = self.meter.used();
        self.peak_resident.fetch_max(used, Ordering::Relaxed);
        let Some(limit) = self.config.mem_limit else {
            return (false, true);
        };
        let mut level = self.pressure.lock().unwrap_or_else(|e| e.into_inner());
        if used <= limit {
            *level = 0;
            return (false, true);
        }
        let steps = self.metrics.counter(names::SERVE_PRESSURE_STEPS);
        match *level {
            0 => {
                *level = 1;
                steps.inc();
                let target = self.cache.len() / 2;
                self.cache.shrink_to(target);
                (false, true)
            }
            1 => {
                *level = 2;
                steps.inc();
                self.cache.shrink_to(0);
                (false, false)
            }
            2 => {
                *level = 3;
                steps.inc();
                (true, false)
            }
            _ => (true, false),
        }
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// The snapshot new queries are admitted under.
    fn snapshot(&self) -> Arc<Structure> {
        self.published
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Report returned by [`ServerHandle::drain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests still in flight when the drain deadline passed and the
    /// cancel token was pulled (0 = every request finished naturally).
    pub interrupted: u64,
    /// Wall time the drain took.
    pub drain: Duration,
    /// Connection threads joined (all of them — none leak).
    pub connections_joined: usize,
    /// The final flushed metrics (`server.*`, `cache.*`), taken after
    /// every thread was joined.
    pub final_metrics: foc_obs::MetricsSnapshot,
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::drain`] aborts in-flight work abruptly (the cancel
/// token is pulled) — call `drain` for the graceful path.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// Starts a server over `structure`. Returns once the listener is bound
/// (use [`ServerHandle::addr`] for the actual port).
pub fn start(structure: Structure, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let metrics = Metrics::new();
    let meter = MemoryMeter::new();
    meter.add(structure.resident_bytes());
    // Force the Gaifman graph now (evaluators would build it lazily on
    // the first request anyway) so its bytes are accounted up front;
    // delta commits then maintain it incrementally.
    let _ = structure.gaifman();
    let cache = Arc::new(
        TermCache::with_capacity(config.cache_capacity)
            .with_metrics(&metrics)
            .with_memory_meter(meter.clone()),
    );
    let writer = DeltaStructure::new(structure);
    let published = RwLock::new(writer.snapshot());
    let shared = Arc::new(Shared {
        gate: Gate::new(config.max_inflight, config.queue),
        config,
        writer: Mutex::new(writer),
        published,
        preds: Predicates::standard(),
        covers: Arc::new(CoverStore::default()),
        cache,
        meter,
        metrics,
        cancel: CancelToken::new(),
        shutdown: AtomicBool::new(false),
        accept_stop: AtomicBool::new(false),
        pressure: Mutex::new(0),
        peak_resident: AtomicU64::new(0),
    });
    let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_shared = shared.clone();
    let accept_conns = conns.clone();
    let accept_thread = std::thread::spawn(move || {
        accept_loop(&listener, &accept_shared, &accept_conns);
    });

    Ok(ServerHandle {
        shared,
        addr,
        accept_thread: Some(accept_thread),
        conns,
    })
}

/// The non-blocking accept loop. Admission decisions happen on the
/// connection threads, so nothing a client does can stall this loop; it
/// polls the shutdown flags between accepts. While the server drains,
/// new connections are still accepted but immediately refused with a
/// shed frame (so clients get a structured signal, not a hang); the
/// loop exits only once drain flips `accept_stop`.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        if shared.accept_stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.draining() {
                    refuse(stream, shared);
                    continue;
                }
                let conn_shared = shared.clone();
                let handle = std::thread::spawn(move || {
                    let _ = serve_connection(stream, &conn_shared);
                });
                conns.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Sheds a connection accepted during drain: one shed frame, then close.
fn refuse(mut stream: TcpStream, shared: &Shared) {
    shared.metrics.counter(names::SERVE_SHED).inc();
    let _ = writeln!(stream, "{}", shed_frame(shared.config.retry_after_ms));
}

/// Reads lines across read timeouts without losing partial data
/// (`BufRead::read_line` may drop buffered bytes on `WouldBlock`).
struct LineReader<R> {
    inner: R,
    acc: Vec<u8>,
}

enum LineEvent {
    Line(String),
    Eof,
    /// Read timeout: no complete line yet; poll the shutdown flag.
    Idle,
}

impl<R: Read> LineReader<R> {
    fn next(&mut self) -> LineEvent {
        loop {
            if let Some(i) = self.acc.iter().position(|&b| b == b'\n') {
                let rest = self.acc.split_off(i + 1);
                let mut line = std::mem::replace(&mut self.acc, rest);
                line.pop(); // '\n'
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return LineEvent::Line(String::from_utf8_lossy(&line).into_owned());
            }
            let mut buf = [0u8; 4096];
            match self.inner.read(&mut buf) {
                Ok(0) => return LineEvent::Eof,
                Ok(n) => self.acc.extend_from_slice(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return LineEvent::Idle;
                }
                Err(_) => return LineEvent::Eof,
            }
        }
    }
}

/// One connection: read request lines, answer each with exactly one
/// frame, stop at EOF or drain.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    // One frame per line in each direction: Nagle only adds delayed-ACK
    // stalls to the request/response rhythm.
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(25)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = LineReader {
        inner: BufReader::new(stream),
        acc: Vec::new(),
    };
    loop {
        if shared.draining() {
            let _ = writeln!(writer, "{}", drained_frame());
            return Ok(());
        }
        match reader.next() {
            LineEvent::Eof => return Ok(()),
            LineEvent::Idle => continue,
            LineEvent::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let frame = serve_line(&line, shared);
                writeln!(writer, "{frame}")?;
            }
        }
    }
}

/// Admission + evaluation of one request line; returns the frame.
fn serve_line(line: &str, shared: &Arc<Shared>) -> String {
    let m = &shared.metrics;
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(f) => {
            m.counter(names::SERVE_ERRORS).inc();
            return error_frame(&f.id, f.class, None, &f.message);
        }
    };
    // Watermark first: under sustained pressure the ladder ends in shed,
    // which must not consume a gate slot.
    let (shed_for_memory, use_cache) = shared.apply_pressure();
    if shed_for_memory {
        m.counter(names::SERVE_SHED).inc();
        return shed_frame(shared.config.retry_after_ms);
    }
    match shared.gate.enter() {
        Admission::Shed => {
            m.counter(names::SERVE_SHED).inc();
            shed_frame(shared.config.retry_after_ms)
        }
        Admission::Admitted => {
            m.counter(names::SERVE_REQUESTS).inc();
            let inflight = shared.gate.lock().inflight;
            m.gauge(names::SERVE_INFLIGHT).set_max(inflight as u64);
            let frame = if req.mode.is_mutation() {
                apply_update(&req, shared)
            } else {
                // Snapshot-consistent read: the epoch is pinned here, at
                // admission, and held for the whole evaluation.
                let snapshot = shared.snapshot();
                evaluate_request(&req, use_cache, &snapshot, shared)
            };
            shared.gate.exit();
            frame
        }
    }
}

/// Applies a mutation request: serialise on the writer lock, commit the
/// batch as one delta, migrate the shared term cache and cover store to
/// the new epoch (recomputing only dirty balls / clusters), publish the
/// snapshot, then retire the old epoch's cache entries. Readers
/// admitted before the publish keep evaluating against their pinned
/// snapshot; entries they re-insert under the retired fingerprint are
/// bounded by the caches' capacity and age out via their normal
/// eviction.
fn apply_update(req: &Request, shared: &Arc<Shared>) -> String {
    let m = &shared.metrics;
    let ops: Vec<TupleOp> = req
        .ops
        .iter()
        .map(|o| {
            if o.insert {
                TupleOp::insert(&o.rel, &o.tuple)
            } else {
                TupleOp::delete(&o.rel, &o.tuple)
            }
        })
        .collect();
    let t0 = Instant::now();
    let mut writer = shared.writer.lock().unwrap_or_else(|e| e.into_inner());
    let old = writer.snapshot();
    match writer.apply(&ops) {
        Err(e) => {
            m.counter(names::SERVE_ERRORS).inc();
            error_frame(&req.id, "mutation", None, &e.to_string())
        }
        Ok(info) => {
            let epoch = info.epoch;
            if info.changed > 0 {
                let new = writer.snapshot();
                let stats = migrate_cache(&shared.cache, &old, &new, &info.touched, &shared.preds);
                shared.covers.migrate(&old, &new, &info.touched);
                *shared.published.write().unwrap_or_else(|e| e.into_inner()) = new.clone();
                shared.cache.evict_structure(old.fingerprint());
                shared.covers.retire(old.fingerprint());
                shared.meter.add(new.resident_bytes());
                shared.meter.sub(old.resident_bytes());
                m.counter(names::SERVE_CACHE_MIGRATED)
                    .add(stats.migrated as u64);
            }
            drop(writer);
            m.counter(names::SERVE_UPDATES).inc();
            m.counter(names::SERVE_TUPLES_CHANGED)
                .add(info.changed as u64);
            let micros = t0.elapsed().as_micros() as u64;
            m.histogram(names::SERVE_LATENCY_MICROS, &pow2_buckets(31))
                .observe(micros);
            update_frame(&req.id, req.mode, epoch, info.changed, micros)
        }
    }
}

/// Clamps the request's budget, builds the evaluator, runs it isolated,
/// and renders the response frame.
fn evaluate_request(
    req: &Request,
    use_cache: bool,
    snapshot: &Arc<Structure>,
    shared: &Arc<Shared>,
) -> String {
    let cfg = &shared.config;
    let m = &shared.metrics;
    let deadline = match req.timeout {
        Some(t) => t.min(cfg.max_timeout),
        None => cfg.max_timeout,
    };
    let mut budget = Budget::unlimited()
        .with_deadline(deadline)
        .with_cancel(shared.cancel.clone());
    match (req.fuel, cfg.max_fuel) {
        (Some(f), Some(cap)) => budget = budget.with_fuel(f.min(cap)),
        (Some(f), None) => budget = budget.with_fuel(f),
        (None, Some(cap)) => budget = budget.with_fuel(cap),
        (None, None) => {}
    }
    if let Some(limit) = req.mem_limit {
        let clamped = match cfg.mem_limit {
            Some(cap) => limit.min(cap),
            None => limit,
        };
        budget = budget.with_memory(shared.meter.clone(), clamped);
    }
    let mut builder = Evaluator::builder()
        .kind(req.engine.unwrap_or(cfg.engine))
        .threads(cfg.threads)
        .degrade(DegradePolicy::FallThrough)
        .budget(budget)
        .fault_panic_element(cfg.fault_panic_element);
    if use_cache {
        builder = builder.shared_cache(shared.cache.clone());
    } else {
        builder = builder.cache(false);
    }
    builder = builder.shared_covers(shared.covers.clone());
    let ev = match builder.build() {
        Ok(ev) => ev,
        Err(e) => {
            m.counter(names::SERVE_ERRORS).inc();
            return error_frame(&req.id, "config", None, &e.to_string());
        }
    };

    let t0 = Instant::now();
    let outcome = run_isolated(|| run_query(&ev, req, snapshot));
    let micros = t0.elapsed().as_micros() as u64;
    m.histogram(names::SERVE_LATENCY_MICROS, &pow2_buckets(31))
        .observe(micros);
    match outcome {
        Ok(answer) => result_frame(&req.id, req.mode, answer, snapshot.epoch(), micros),
        Err(Fault::Error(RequestError::Parse(msg))) => {
            m.counter(names::SERVE_ERRORS).inc();
            error_frame(&req.id, "parse", None, &msg)
        }
        Err(Fault::Error(RequestError::Engine(e))) => {
            m.counter(names::SERVE_ERRORS).inc();
            if let Error::Interrupted(i) = &e {
                m.counter(names::SERVE_INTERRUPTED).inc();
                if shared.draining() && i.reason == TripReason::Cancelled {
                    m.counter(names::SERVE_DRAIN_INTERRUPTED).inc();
                }
                error_frame(
                    &req.id,
                    "interrupted",
                    Some(&i.reason.to_string()),
                    &e.to_string(),
                )
            } else {
                // Panics contained below the engine boundary (the
                // evaluators' own isolation) surface as
                // `WorkerPanicked`; count them with the ones caught by
                // `run_isolated` here.
                if matches!(e, Error::WorkerPanicked { .. }) {
                    m.counter(names::SERVE_PANICS).inc();
                }
                error_frame(&req.id, classify(&e), None, &e.to_string())
            }
        }
        Err(Fault::Panic(p)) => {
            m.counter(names::SERVE_ERRORS).inc();
            m.counter(names::SERVE_PANICS).inc();
            error_frame(&req.id, "panic", None, &p.payload)
        }
    }
}

/// Why one request failed below the panic boundary.
enum RequestError {
    Parse(String),
    Engine(Error),
}

fn run_query(ev: &Evaluator, req: &Request, a: &Structure) -> Result<Answer, RequestError> {
    match req.mode {
        Mode::Check => {
            let f = parse_formula(&req.query).map_err(|e| RequestError::Parse(e.to_string()))?;
            ev.check_sentence(a, &f)
                .map(Answer::Bool)
                .map_err(RequestError::Engine)
        }
        Mode::Eval => {
            let t = parse_term(&req.query).map_err(|e| RequestError::Parse(e.to_string()))?;
            ev.eval_ground(a, &t)
                .map(Answer::Int)
                .map_err(RequestError::Engine)
        }
        // Mutations never reach the query path (`serve_line` routes them
        // to `apply_update` before an evaluator is built).
        Mode::Update | Mode::Batch => Err(RequestError::Parse(
            "mutation mode routed to the query path".to_string(),
        )),
    }
}

/// Stable error-class names for the error frame (aligned with the
/// differential harness's taxonomy where the classes overlap).
fn classify(e: &Error) -> &'static str {
    match e {
        Error::NotFoc1(_) => "not-foc1",
        Error::Eval(_) => "eval",
        Error::Locality(_) => "locality",
        Error::Unsupported(_) => "unsupported",
        Error::Config(_) => "config",
        Error::Interrupted(_) => "interrupted",
        Error::WorkerPanicked { .. } => "panic",
    }
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (`server.*`, plus the shared
    /// cache's `cache.*` / `engine.cache.evictions` mirrors).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Current server-wide byte account (structure + cache occupancy).
    pub fn resident_bytes(&self) -> u64 {
        self.shared.meter.used()
    }

    /// Peak of the byte account since startup.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.shared
            .peak_resident
            .load(Ordering::Relaxed)
            .max(self.shared.meter.used())
    }

    /// Graceful drain: stop accepting, shed queued work, let in-flight
    /// requests finish until the drain deadline, then cancel whatever
    /// remains, join every thread, and flush metrics. Idempotent by
    /// construction (the handle is consumed).
    pub fn drain(mut self) -> DrainReport {
        let t0 = Instant::now();
        let m = &self.shared.metrics;
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.gate.start_drain();
        let deadline = t0 + self.shared.config.drain_timeout;
        let leftover = self.shared.gate.wait_idle(deadline);
        if leftover > 0 {
            // Past the deadline: pull the cancel token so in-flight
            // guards trip at their next check, then wait again (briefly
            // unbounded — a guard-checked evaluation always observes the
            // token).
            self.shared.cancel.cancel();
            self.shared
                .gate
                .wait_idle(Instant::now() + Duration::from_secs(60));
        }
        self.shared.accept_stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = {
            let mut guard = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        let connections_joined = handles.len();
        for h in handles {
            let _ = h.join();
        }
        let drain = t0.elapsed();
        m.counter(names::SERVE_DRAIN_NANOS)
            .add(drain.as_nanos() as u64);
        let final_metrics = m.snapshot();
        DrainReport {
            interrupted: final_metrics.counter(names::SERVE_DRAIN_INTERRUPTED),
            drain,
            connections_joined,
            final_metrics,
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Abrupt shutdown path (drain consumes the handle, so this only
        // runs when the handle was dropped without draining): cancel
        // everything and reap the accept thread so tests cannot leak it.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.gate.start_drain();
        self.shared.cancel.cancel();
        self.shared.accept_stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = {
            let mut guard = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}
