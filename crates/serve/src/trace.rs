//! Tail-based trace sampling: deciding which request traces to keep and
//! where the kept ones go.
//!
//! Every request is traced while it runs (when `ServerConfig::tracing`
//! is on): a per-request `MemorySink` captures the full span tree the
//! engine would otherwise discard. The *keep* decision is made at the
//! tail, after the outcome is known:
//!
//! * **tail** — kept because the request is anomalous: it errored,
//!   panicked, tripped a budget (deadline / fuel / cancel / memory), or
//!   exceeded the slow-query threshold;
//! * **random** — kept by the seeded 1-in-N sampler so the healthy
//!   population stays represented.
//!
//! Kept traces are emitted as one JSON line each: request identity
//! (`trace_id` / `request_id`), the query text, the snapshot epoch it
//! ran against, latency, outcome, why it was sampled, and the span
//! tree. They land in a bounded in-memory ring (surfaced by
//! [`crate::server::ServerHandle::recent_traces`]) and, when a trace
//! path is configured, are appended to a JSON-lines file.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use foc_guard::TraceContext;
use foc_obs::report::json_escape;
use foc_obs::sink::span_to_json;
use foc_obs::FinishedSpan;

/// How many kept traces the in-memory ring retains.
const RECENT_TRACES: usize = 64;

/// The seeded 1-in-N keep decision for well-behaved requests.
/// Anomalous requests bypass the sampler entirely (they are always
/// kept), so this only thins the healthy population. The decision is a
/// deterministic function of `(seed, arrival index)` — two servers
/// started with the same seed sample the same request positions.
#[derive(Debug)]
pub(crate) struct TailSampler {
    sample_n: u64,
    seed: u64,
    seq: AtomicU64,
}

impl TailSampler {
    pub(crate) fn new(sample_n: u64, seed: u64) -> TailSampler {
        TailSampler {
            sample_n,
            seed,
            seq: AtomicU64::new(0),
        }
    }

    /// Whether this (non-anomalous) request should be kept anyway.
    /// `sample_n == 0` keeps none, `1` keeps all.
    pub(crate) fn keep_random(&self) -> bool {
        if self.sample_n == 0 {
            return false;
        }
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        if self.sample_n == 1 {
            return true;
        }
        // splitmix-style finalizer over (seed, index): cheap, stateless
        // given the counter, and well-spread even for sequential input.
        let mut x = n.wrapping_add(self.seed);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        x.is_multiple_of(self.sample_n)
    }
}

/// Renders one kept trace as a single JSON line. `sampled` is `"tail"`
/// or `"random"`; `outcome` is `"ok"`, `"slow"`, `"error"`,
/// `"interrupted"`, or `"panic"`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn trace_line(
    tc: &TraceContext,
    mode: &str,
    query: &str,
    epoch: u64,
    micros: u64,
    outcome: &str,
    sampled: &str,
    spans: &[FinishedSpan],
) -> String {
    let mut out = format!(
        "{{\"trace_id\":\"{}\",\"request_id\":\"{}\",\"mode\":\"{}\",\"query\":\"{}\",\"epoch\":{epoch},\"micros\":{micros},\"outcome\":\"{}\",\"sampled\":\"{}\",\"spans\":[",
        json_escape(&tc.trace_id),
        json_escape(&tc.request_id),
        json_escape(mode),
        json_escape(query),
        json_escape(outcome),
        json_escape(sampled),
    );
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&span_to_json(s));
    }
    out.push_str("]}");
    out
}

/// Where kept traces go: a bounded in-memory ring always, plus an
/// appended JSON-lines file when a path was configured.
pub(crate) struct TraceLog {
    recent: Mutex<VecDeque<String>>,
    file: Mutex<Option<File>>,
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog").finish_non_exhaustive()
    }
}

impl TraceLog {
    /// A log appending to `path` (created if absent) when given.
    pub(crate) fn new(path: Option<&Path>) -> std::io::Result<TraceLog> {
        let file = match path {
            Some(p) => Some(OpenOptions::new().create(true).append(true).open(p)?),
            None => None,
        };
        Ok(TraceLog {
            recent: Mutex::new(VecDeque::new()),
            file: Mutex::new(file),
        })
    }

    /// Emits one kept trace line. File errors are swallowed: a full
    /// disk must not take the query path down with it.
    pub(crate) fn emit(&self, line: String) {
        if let Some(f) = self.file.lock().unwrap_or_else(|e| e.into_inner()).as_mut() {
            let _ = writeln!(f, "{line}");
        }
        let mut recent = self.recent.lock().unwrap_or_else(|e| e.into_inner());
        if recent.len() >= RECENT_TRACES {
            recent.pop_front();
        }
        recent.push_back(line);
    }

    /// The kept traces still in the ring, oldest first.
    pub(crate) fn recent(&self) -> Vec<String> {
        self.recent
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foc_obs::AttrValue;

    #[test]
    fn sampler_is_deterministic_and_respects_n() {
        let a = TailSampler::new(4, 99);
        let b = TailSampler::new(4, 99);
        let da: Vec<bool> = (0..256).map(|_| a.keep_random()).collect();
        let db: Vec<bool> = (0..256).map(|_| b.keep_random()).collect();
        assert_eq!(da, db, "same seed, same decisions");
        let kept = da.iter().filter(|&&k| k).count();
        // 1-in-4 over 256 draws: allow a wide band, reject degenerate
        // all/none behaviour.
        assert!((16..=128).contains(&kept), "kept {kept} of 256 at n=4");

        let none = TailSampler::new(0, 1);
        assert!((0..64).all(|_| !none.keep_random()));
        let all = TailSampler::new(1, 1);
        assert!((0..64).all(|_| all.keep_random()));
    }

    #[test]
    fn trace_lines_are_single_line_json_with_spans() {
        let tc = TraceContext::new("ab12-3", "q9");
        let spans = vec![FinishedSpan {
            id: 0,
            parent: None,
            name: "session",
            start_nanos: 1_000,
            dur_nanos: 9_000,
            attrs: vec![("engine", AttrValue::Text("Local".into()))],
        }];
        let line = trace_line(
            &tc,
            "check",
            "E(x,\"y\")",
            7,
            42,
            "interrupted",
            "tail",
            &spans,
        );
        assert!(!line.contains('\n'));
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(
            v.get("trace_id").and_then(crate::json::Value::as_str),
            Some("ab12-3")
        );
        assert_eq!(
            v.get("outcome").and_then(crate::json::Value::as_str),
            Some("interrupted")
        );
        assert_eq!(v.get("epoch").and_then(crate::json::Value::as_int), Some(7));
        match v.get("spans") {
            Some(crate::json::Value::Array(items)) => assert_eq!(items.len(), 1),
            other => panic!("spans not an array: {other:?}"),
        }
    }

    #[test]
    fn trace_log_ring_is_bounded_and_file_appends() {
        let log = TraceLog::new(None).unwrap();
        for i in 0..(RECENT_TRACES + 10) {
            log.emit(format!("{{\"i\":{i}}}"));
        }
        let recent = log.recent();
        assert_eq!(recent.len(), RECENT_TRACES);
        assert_eq!(
            recent.last().unwrap(),
            &format!("{{\"i\":{}}}", RECENT_TRACES + 9)
        );

        let dir = std::env::temp_dir().join(format!("foc-trace-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traces.jsonl");
        {
            let log = TraceLog::new(Some(&path)).unwrap();
            log.emit("{\"a\":1}".to_string());
            log.emit("{\"a\":2}".to_string());
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
