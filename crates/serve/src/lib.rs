//! # foc-serve — the resilient query-serving mode
//!
//! A dependency-free JSON-lines TCP server over one resident
//! [`foc_structures::Structure`]: load once, evaluate FOC1(P) queries
//! from concurrent clients, survive the queries that misbehave.
//!
//! The robustness machinery of the earlier layers is composed here into
//! a long-running process:
//!
//! * **Admission control** — a bounded in-flight limit plus a bounded
//!   wait queue; beyond both, requests are *shed* with a structured
//!   `retry_after_ms` frame instead of queueing unboundedly
//!   ([`server::Gate`] internals, [`protocol::shed_frame`]);
//! * **Per-request budgets** — request-supplied deadline/fuel clamped
//!   by server-wide caps and armed as a [`foc_guard::Budget`], with the
//!   drain [`foc_guard::CancelToken`] threaded through every guard;
//! * **Panic isolation** — each evaluation runs under
//!   [`foc_parallel::run_isolated`]; a poisoned query is one error
//!   frame, not a dead server;
//! * **Memory watermark** — structure bytes and shared-cache occupancy
//!   are mirrored into a [`foc_guard::MemoryMeter`]; over the limit the
//!   server walks shrink-cache → stop-caching → shed, and requests can
//!   carry their own byte cap that trips
//!   [`foc_guard::TripReason::Memory`];
//! * **Graceful drain** — stop accepting, shed the queue, finish
//!   in-flight work against a drain deadline, cancel the stragglers,
//!   join every thread, flush metrics ([`server::ServerHandle::drain`]);
//! * **Request-scoped tracing** — every request is stamped with a
//!   server-minted `trace_id` (echoed on each of its frames), its span
//!   tree is captured while it runs, and a *tail-based* sampler keeps
//!   the full trace of every request that erred, panicked, was
//!   interrupted, or ran slow, plus a seeded 1-in-N of the healthy
//!   rest (the `trace` module internals, `ServerConfig::tracing`);
//! * **Telemetry listener** — a second socket answering `GET /metrics`
//!   (Prometheus text exposition), `/healthz` (drain- and
//!   pressure-aware), and `/stats` (live JSON) without touching the
//!   admission gate (the `telemetry` module internals,
//!   `ServerConfig::telemetry_addr`);
//! * **Flight recorder** — a fixed-capacity ring of recent span
//!   closures and events, dumped to a postmortem JSON file on worker
//!   panic, drain-deadline interruption, or watermark escalation to
//!   the shed rung (`ServerConfig::postmortem_dir`);
//! * **Anytime evaluation** — proto-2 requests with `"anytime":true`
//!   run through the deepening driver ([`foc_core::anytime`]): each
//!   completed pass streams a `partial` frame and the terminal result
//!   carries a confidence tag (`exact` / `lower_bound` / `partial`),
//!   so a tripped budget returns the best-so-far answer instead of an
//!   `interrupted` error. The memory-pressure ladder also *forces*
//!   anytime mode one rung before shedding — degraded answers beat
//!   refusals;
//! * **Crash-safe durability** — with `ServerConfig::wal_dir` set,
//!   every effective commit is appended to a [`foc_wal`] write-ahead
//!   log and made durable per [`foc_wal::FsyncPolicy`] *before* the
//!   result frame is emitted (an acknowledged update survives
//!   `kill -9`); startup recovers the directory — checkpoint restore,
//!   torn-tail truncation, fingerprint-verified replay — and refuses
//!   to serve a diverged state. A WAL write failure rolls the commit
//!   back and degrades the server to read-only (structured
//!   `read-only` frames, `/healthz` 503), a second failure drains;
//!   request lines beyond `ServerConfig::max_frame_bytes` are answered
//!   with a structured `bad-request` frame without buffering them.
//!
//! The wire protocol is one JSON object per line in each direction; see
//! [`protocol`].

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod json;
pub mod protocol;
pub mod server;
mod telemetry;
mod trace;

pub use protocol::{parse_request, Answer, Mode, Request, PROTO_PROGRESSIVE, PROTO_VERSION};
pub use server::{start, DrainReport, ServerConfig, ServerHandle};
