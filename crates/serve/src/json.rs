//! A minimal JSON reader for request frames.
//!
//! The wire protocol is JSON lines, but the build environment is
//! dependency-free, so this module hand-rolls the *reading* side (the
//! writing side reuses [`foc_obs::report::json_escape`]). It parses the
//! subset a request frame can contain — objects, strings, integers,
//! booleans, null — plus nested arrays/objects for forward
//! compatibility (parsed and discarded by the caller). Numbers are kept
//! as `i64`; the protocol has no fractional fields.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the protocol has no fractional numbers; a fraction
    /// or exponent is a parse error).
    Int(i64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Key order is irrelevant to the protocol; a `BTreeMap`
    /// keeps iteration deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string behind this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer behind this value, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean behind this value, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup (`None` for missing keys and non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parses one complete JSON value from `input` (surrounding whitespace
/// allowed, trailing garbage rejected).
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_int(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_int(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if matches!(b.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
        return Err("fractional numbers are not part of the protocol".into());
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<i64>().ok())
        .map(Value::Int)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        // Surrogates are rejected rather than paired — the
                        // protocol's strings are queries and ids, which are
                        // BMP text in practice.
                        out.push(char::from_u32(cp).ok_or("non-scalar \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // bytes are valid UTF-8).
                let s = &b[*pos..];
                let ch_len = match s[0] {
                    c if c < 0x80 => 1,
                    c if c < 0xe0 => 2,
                    c if c < 0xf0 => 3,
                    _ => 4,
                };
                let text = std::str::from_utf8(&s[..ch_len]).map_err(|_| "invalid utf-8")?;
                out.push_str(text);
                *pos += ch_len;
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_request_frame() {
        let v = parse(r#"{"id":"r1","mode":"check","query":"exists y. E(y,y)","timeout_ms":500}"#)
            .unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("r1"));
        assert_eq!(v.get("timeout_ms").and_then(Value::as_int), Some(500));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_escapes_nesting_and_negatives() {
        let v = parse(r#"{"s":"a\"b\nA","n":-7,"a":[1,true,null,{"x":2}]}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\"b\nA"));
        assert_eq!(v.get("n").and_then(Value::as_int), Some(-7));
        match v.get("a") {
            Some(Value::Array(items)) => assert_eq!(items.len(), 4),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "1.5",
            "{\"a\":1} trailing",
            "\"unterminated",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
