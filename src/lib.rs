//! # foc-repro — reproduction of *First-Order Query Evaluation with
//! Cardinality Conditions* (Grohe & Schweikardt, PODS 2018)
//!
//! This façade crate re-exports the whole workspace so the examples and
//! integration tests can use one import root. See the individual crates
//! for the substance:
//!
//! * [`foc_logic`] — FOC(P) syntax, FOC1(P) fragment, parser;
//! * [`foc_structures`] — relational structures, Gaifman graphs,
//!   generators;
//! * [`foc_eval`] — reference semantics (Definition 3.1), queries
//!   (Definition 5.2);
//! * [`foc_locality`] — Gaifman normal form, cl-terms, the Section 6
//!   decomposition;
//! * [`foc_covers`] — neighbourhood covers, splitter game, Removal
//!   Lemma (Sections 7–8);
//! * [`foc_hardness`] — the Section 4 hardness reductions;
//! * [`foc_core`] — the FOC1(P) evaluation engines (Theorem 5.5).

#![warn(missing_docs)]

pub use foc_core as core;
pub use foc_covers as covers;
pub use foc_eval as eval;
pub use foc_hardness as hardness;
pub use foc_locality as locality;
pub use foc_logic as logic;
pub use foc_structures as structures;
