//! Example 5.4: cardinality conditions over a coloured directed graph —
//! triangle counts, colour counts, and the paper's compound query
//! `{ (x, y, t_B(x)·t_Δ(y)) : φ_{B,Δ,R}(x) ∧ G(y) }`.
//!
//! ```text
//! cargo run --release --example triangles_and_colors
//! ```

use foc_core::{EngineKind, Evaluator};
use foc_logic::build::*;
use foc_logic::{Query, Var};
use foc_structures::gen::{colored_digraph, ColoredParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let s = colored_digraph(
        ColoredParams {
            n: 600,
            avg_out_degree: 2.0,
            p_red: 0.01,
            p_blue: 0.4,
            p_green: 0.3,
        },
        &mut rng,
    );
    println!("coloured digraph: |A| = {}, ‖A‖ = {}", s.order(), s.size());

    let x = v("x");
    let y = v("y");
    let z = v("z");

    // t_R = #(x).R(x): the total number of red nodes (ground).
    let t_red = cnt_vec(vec![x], atom_vec("R", vec![x]));
    // t_Δ(x) = #(y,z).(E(x,y) ∧ E(y,z) ∧ E(z,x)): directed triangles at x.
    let t_delta = |var: Var| {
        cnt_vec(
            vec![y, z],
            and_all([
                atom_vec("E", vec![var, y]),
                atom_vec("E", vec![y, z]),
                atom_vec("E", vec![z, var]),
            ]),
        )
    };
    // t_B(x) = #(y).(E(x,y) ∧ B(y)): blue out-neighbours.
    let t_blue = |var: Var| {
        let w = Var::fresh("w");
        cnt_vec(
            vec![w],
            and(atom_vec("E", vec![var, w]), atom_vec("B", vec![w])),
        )
    };

    let ev = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap();

    // t_{Δ,R} = #(x).(t_Δ(x) = t_R): nodes participating in exactly as
    // many triangles as there are red nodes.
    let phi_delta_r: Arc<foc_logic::Formula> = teq(t_delta(x), t_red.clone());
    let t_delta_r = cnt_vec(vec![x], phi_delta_r);
    let t0 = Instant::now();
    let n_delta_r = ev.eval_ground(&s, &t_delta_r).expect("evaluates");
    println!(
        "t_Δ,R (nodes with #triangles = #red) = {n_delta_r}  [{:?}]",
        t0.elapsed()
    );

    // φ_{B,Δ,R}(x) := t_B(x) = t_Δ(x) + t_{Δ,R}.
    let phi_bdr = teq(t_blue(x), add(t_delta(x), t_delta_r.clone()));

    // The paper's query { (x, y, t_B(x)·t_Δ(y)) : φ_{B,Δ,R}(x) ∧ G(y) }.
    // (Two head variables: evaluated by the reference path; the heavy
    // lifting — the cardinality guards — was already benchmarked above.)
    let q = Query::new(
        vec![x, y],
        vec![mul(t_blue(x), t_delta(y))],
        and(phi_bdr, atom_vec("G", vec![y])),
    )
    .expect("well-formed query");
    let t0 = Instant::now();
    let res = ev.query(&s, &q).expect("query evaluates");
    println!(
        "compound query of Example 5.4: {} result tuples  [{:?}]",
        res.rows.len(),
        t0.elapsed()
    );
    if let Some(row) = res.rows.first() {
        println!(
            "  first row: x = {}, y = {}, t_B(x)·t_Δ(y) = {}",
            row.elems[0], row.elems[1], row.counts[0]
        );
    }

    // Engine agreement spot check on the ground statistics.
    let naive = Evaluator::builder()
        .kind(EngineKind::Naive)
        .build()
        .unwrap();
    assert_eq!(naive.eval_ground(&s, &t_delta_r).unwrap(), n_delta_r);
    println!("naive engine agrees ✓");
}
