//! The Section 4 hardness constructions, end to end: encode a graph as a
//! tree (Theorem 4.1) and as a string (Theorem 4.3), rewrite an FO
//! sentence, and verify both sides agree.
//!
//! ```text
//! cargo run --release --example hardness_demo
//! ```

use foc_eval::NaiveEvaluator;
use foc_hardness::{string_encoding, string_formula, tree_encoding, tree_formula};
use foc_logic::parse::parse_formula;
use foc_logic::Predicates;
use foc_structures::gen::gnm;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let preds = Predicates::standard();
    let mut rng = StdRng::seed_from_u64(4);
    let g = gnm(8, 11, &mut rng);
    println!(
        "graph G: |V| = {}, |E| = {}",
        g.order(),
        g.gaifman().num_edges()
    );

    let sentences = [
        (
            "triangle",
            "exists x y z. (E(x,y) & E(y,z) & E(z,x) & !(x=y) & !(y=z) & !(x=z))",
        ),
        ("isolated vertex", "exists x. !(exists y. E(x,y))"),
        (
            "dominating edge",
            "exists x y. (E(x,y) & forall z. (E(x,z) | E(y,z) | z=x | z=y))",
        ),
    ];

    // Theorem 4.1: FO on graphs ≤ᵖ FOC({P=}) on trees.
    let tree = tree_encoding(&g);
    println!(
        "\nT_G (Theorem 4.1): |A| = {}, ‖A‖ = {} — a tree of height 3",
        tree.tree.order(),
        tree.tree.size()
    );
    for (name, src) in &sentences {
        let phi = parse_formula(src).unwrap();
        let phi_hat = tree_formula(&phi);
        let mut evg = NaiveEvaluator::new(&g, &preds);
        let on_g = evg.check_sentence(&phi).unwrap();
        let mut evt = NaiveEvaluator::new(&tree.tree, &preds);
        let on_t = evt.check_sentence(&phi_hat).unwrap();
        assert_eq!(on_g, on_t, "tree reduction must agree");
        println!(
            "  {name}: G ⊨ φ = {on_g}, T_G ⊨ φ̂ = {on_t} ✓  (‖φ‖ = {}, ‖φ̂‖ = {})",
            phi.size(),
            phi_hat.size()
        );
    }

    // Theorem 4.3: FO on graphs ≤ᵖ FOC({P=}) on strings.
    let string = string_encoding(&g);
    println!(
        "\nS_G (Theorem 4.3): word of length {} over {{a,b,c}}, ‖A‖ = {}",
        string.word.len(),
        string.string.size()
    );
    println!(
        "  word prefix: {}…",
        &string.word[..string.word.len().min(48)]
    );
    for (name, src) in &sentences[..2] {
        let phi = parse_formula(src).unwrap();
        let phi_hat = string_formula(&phi);
        let mut evg = NaiveEvaluator::new(&g, &preds);
        let on_g = evg.check_sentence(&phi).unwrap();
        let mut evs = NaiveEvaluator::new(&string.string, &preds);
        let on_s = evs.check_sentence(&phi_hat).unwrap();
        assert_eq!(on_g, on_s, "string reduction must agree");
        println!("  {name}: G ⊨ φ = {on_g}, S_G ⊨ φ̂ = {on_s} ✓");
    }

    println!(
        "\nBoth reductions are polynomial: arbitrary FO model checking on graphs\n\
         embeds into FOC({{P=}}) on trees/strings — so FOC(P) on these classes is\n\
         AW[*]-hard (Corollaries 4.2/4.4), which is why the paper restricts to\n\
         FOC1(P) for the tractability result."
    );
}
