//! A miniature version of experiments E3/E4: measure how the engines
//! scale on growing nowhere dense structures for counting problems whose
//! naive evaluation is genuinely quadratic. Theorem 5.5 / Corollary 5.6
//! predict almost-linear growth for the decomposing engines.
//!
//! The workload is the *far-pairs count* `#(x,y). ¬(dist(x,y) ≤ 2)`:
//! naively this enumerates all n² pairs (negated guards admit no
//! candidate pruning), while the Lemma 6.4 decomposition rewrites it as
//! `|A|² − #(close pairs)` with the close pairs counted locally —
//! inclusion–exclusion doing exactly what the paper promises.
//!
//! ```text
//! cargo run --release --example scaling
//! ```

use foc_core::{EngineKind, Evaluator};
use foc_logic::parse::parse_term;
use foc_structures::gen::{grid, random_tree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn main() {
    let term = parse_term("#(x,y). !(dist(x,y) <= 2)").unwrap();
    println!("ground term: {term}  (count of pairs more than 2 apart)\n");

    let mut rng = StdRng::seed_from_u64(11);
    for (name, make) in [
        (
            "random tree",
            Box::new(|n: u32, rng: &mut StdRng| random_tree(n, rng))
                as Box<dyn Fn(u32, &mut StdRng) -> foc_structures::Structure>,
        ),
        (
            "square grid",
            Box::new(|n: u32, _rng: &mut StdRng| {
                let side = (n as f64).sqrt().round() as u32;
                grid(side, side)
            }),
        ),
    ] {
        println!("== {name} ==");
        println!("{:>8} {:>14} {:>14} {:>14}", "n", "naive", "local", "cover");
        for n in [500u32, 1_000, 2_000, 4_000, 8_000] {
            let s = make(n, &mut rng);
            let mut line = format!("{:>8}", s.order());
            let mut reference: Option<i64> = None;
            for kind in [EngineKind::Naive, EngineKind::Local, EngineKind::Cover] {
                // Keep the naive baseline bounded at large n.
                if kind == EngineKind::Naive && n > 4_000 {
                    line.push_str(&format!(" {:>14}", "(skipped)"));
                    continue;
                }
                let ev = Evaluator::builder().kind(kind).build().unwrap();
                let t0 = Instant::now();
                let val = ev.eval_ground(&s, &term).unwrap();
                let dt: Duration = t0.elapsed();
                if let Some(r) = reference {
                    assert_eq!(val, r, "engines disagree!");
                } else {
                    reference = Some(val);
                }
                line.push_str(&format!(" {:>14}", format!("{dt:?}")));
            }
            println!("{line}");
        }
        println!();
    }
    println!("(naive is Θ(n²·ball) on this workload; the decomposed engines are near-linear)");
}
