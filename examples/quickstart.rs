//! Quickstart: parse an FOC1(P) sentence, evaluate it with the three
//! engines, and inspect the decomposition plan.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use foc_core::{EngineKind, Evaluator};
use foc_logic::parse::{parse_formula, parse_term};
use foc_structures::gen::{grid, random_tree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // A 40×40 grid: a planar (hence nowhere dense) "database".
    let g = grid(40, 40);
    println!(
        "structure: 40x40 grid, |A| = {}, ‖A‖ = {}",
        g.order(),
        g.size()
    );

    // "Some vertex has at least 3 neighbours of degree 4" — an FOC1(P)
    // sentence mixing quantification and cardinality conditions.
    let sentence =
        parse_formula("exists x. #(y). (E(x,y) & #(z). E(y,z) = 4) >= 3").expect("parses");
    println!("sentence: {sentence}");

    for kind in [EngineKind::Naive, EngineKind::Local, EngineKind::Cover] {
        let ev = Evaluator::builder().kind(kind).build().unwrap();
        let t0 = Instant::now();
        let ans = ev.check_sentence(&g, &sentence).expect("evaluates");
        println!("  {kind:?}: {ans} in {:?}", t0.elapsed());
    }

    // The decomposition plan (Theorem 6.10): which cardinality guards
    // were materialised as fresh unary relations.
    let ev = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap();
    let mut session = ev.session(&g);
    session.check_sentence(&sentence).unwrap();
    println!("decomposition plan ({} markers):", session.plan.len());
    for m in &session.plan {
        println!(
            "  {}({}) := {}",
            m.symbol,
            if m.arity == 1 { "x" } else { "" },
            m.definition
        );
    }
    println!(
        "stats: {} cl-terms, {} basic cl-terms, {} naive fall-backs",
        session.stats().clterms,
        session.stats().basics,
        session.stats().naive_fallbacks
    );

    // Counting (Corollary 5.6): the number of edges with both endpoints
    // of degree 4, on a random tree.
    let mut rng = StdRng::seed_from_u64(1);
    let t = random_tree(10_000, &mut rng);
    let term =
        parse_term("#(x,y). (E(x,y) & #(z). E(x,z) = 4 & #(w). E(y,w) = 4)").expect("parses");
    let ev = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap();
    let t0 = Instant::now();
    let n = ev.eval_ground(&t, &term).expect("evaluates");
    println!(
        "random tree (n = 10000): {} deg4–deg4 edge pairs in {:?} (Local engine)",
        n,
        t0.elapsed()
    );
}
