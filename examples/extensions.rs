//! The three Section 9 "open questions", prototyped:
//!
//! 1. SUM/AVG aggregates (`foc_core::aggregate`),
//! 2. database updates (`foc_core::dynamic`),
//! 3. constant-delay enumeration (`foc_core::enumerate`).
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use foc_core::{EdgeUpdate, EngineKind, Evaluator, MaintainedTerm, SumAggregate, Weights};
use foc_logic::build::*;
use foc_logic::Query;
use foc_structures::gen::random_tree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(20);
    let s = random_tree(20_000, &mut rng);
    println!("structure: random tree, n = {}", s.order());

    // ── (1) SUM/AVG ────────────────────────────────────────────────────
    // Weighted degree sum: Σ over edges (x,y) of w(y).
    let x = v("x");
    let y = v("y");
    let weights = Weights::new((0..s.order()).map(|_| rng.gen_range(0i64..100)).collect());
    let agg = SumAggregate::new(vec![x, y], y, atom("E", [x, y])).unwrap();
    let ev = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap();
    let t0 = Instant::now();
    let sum = ev.eval_sum(&s, &weights, &agg).unwrap();
    let avg = ev.eval_avg(&s, &weights, &agg).unwrap();
    println!(
        "\n(1) SUM over edges of w(endpoint) = {sum}; AVG = {:.2}  [{:?}]",
        avg.value().unwrap(),
        t0.elapsed()
    );

    // ── (2) database updates ──────────────────────────────────────────
    // Maintain the number of close pairs (dist ≤ 2) under edge updates.
    let body = and(dist_le(x, y, 2), not(eq(x, y)));
    let t0 = Instant::now();
    let mut maintained = MaintainedTerm::new(s.clone(), "E", &[x, y], &body).unwrap();
    println!(
        "\n(2) maintained #(x,y). dist(x,y) ≤ 2 ∧ x≠y = {}  [initialised in {:?}]",
        maintained.value(),
        t0.elapsed()
    );
    let mut total_affected = 0usize;
    let t0 = Instant::now();
    let updates = 20;
    for _ in 0..updates {
        let u = rng.gen_range(0..s.order());
        let w = rng.gen_range(0..s.order());
        if u == w {
            continue;
        }
        let up = if rng.gen_bool(0.6) {
            EdgeUpdate::Insert(u, w)
        } else {
            EdgeUpdate::Delete(u, w)
        };
        maintained.apply(up).unwrap();
        total_affected += maintained.last_affected();
    }
    println!(
        "    after {updates} random updates: value = {}, avg affected = {} of {} elements/update  [{:?}]",
        maintained.value(),
        total_affected / updates,
        s.order(),
        t0.elapsed()
    );
    assert_eq!(
        maintained.value(),
        maintained.recompute_from_scratch().unwrap()
    );
    println!("    matches from-scratch recomputation ✓");

    // ── (3) constant-delay enumeration ────────────────────────────────
    let q = Query::new(
        vec![x],
        vec![cnt_vec(vec![y], atom("E", [x, y]))],
        tle(int(3), cnt_vec(vec![y], atom("E", [x, y]))),
    )
    .unwrap();
    let en = ev.enumerate_query(&s, &q).unwrap();
    println!(
        "\n(3) constant-delay enumeration: {} rows, preprocessing {:?}",
        en.len(),
        en.preprocessing
    );
    let t0 = Instant::now();
    let rows: Vec<_> = en.collect();
    let per_row = t0.elapsed() / rows.len().max(1) as u32;
    println!(
        "    emitted all rows at {per_row:?}/row; first: vertex {} with degree {}",
        rows[0].elems[0], rows[0].counts[0]
    );
}
