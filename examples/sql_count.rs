//! The SQL COUNT workloads of Example 5.3: GROUP BY counts on the
//! Customer/Order database, expressed as FOC1(P)-queries and evaluated
//! with all three engines.
//!
//! ```text
//! cargo run --release --example sql_count
//! ```

use foc_core::sql::{
    customers_per_country, orders_per_berlin_customer, total_customers_and_orders,
};
use foc_core::{EngineKind, Evaluator};
use foc_structures::gen::{sql_database, SqlDbParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let params = SqlDbParams {
        customers: 2_000,
        countries: 25,
        cities: 60,
        avg_orders: 2.0,
    };
    let db = sql_database(params, &mut rng);
    println!(
        "database: {} customers, {} orders, ‖A‖ = {}",
        db.customers.len(),
        db.orders.len(),
        db.structure.size()
    );

    // SELECT Country, COUNT(Id) FROM Customer GROUP BY Country.
    println!("\n-- SELECT Country, COUNT(Id) FROM Customer GROUP BY Country");
    let q = customers_per_country(true);
    println!("   as FOC1(P): {q}");
    let truth = db.customers_per_country();
    for kind in [EngineKind::Local, EngineKind::Cover, EngineKind::Naive] {
        let ev = Evaluator::builder().kind(kind).build().unwrap();
        let t0 = Instant::now();
        let res = ev.query(&db.structure, &q).expect("query evaluates");
        let elapsed = t0.elapsed();
        // Validate against the generator's ground truth.
        for row in &res.rows {
            let ci = db
                .countries
                .iter()
                .position(|&c| c == row.elems[0])
                .expect("country");
            assert_eq!(row.counts[0] as usize, truth[ci], "engine {kind:?} wrong");
        }
        println!("   {kind:?}: {} groups in {elapsed:?}", res.rows.len());
    }

    // SELECT (SELECT COUNT(*) FROM Customer), (SELECT COUNT(*) FROM Order).
    println!("\n-- total customers and orders");
    let q = total_customers_and_orders();
    let ev = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap();
    let t0 = Instant::now();
    let res = ev.query(&db.structure, &q).expect("query evaluates");
    println!(
        "   Local: customers = {}, orders = {} in {:?}",
        res.rows[0].counts[0],
        res.rows[0].counts[1],
        t0.elapsed()
    );

    // Orders per customer in Berlin.
    println!("\n-- orders per Berlin customer");
    let q = orders_per_berlin_customer();
    let ev = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap();
    let t0 = Instant::now();
    let res = ev.query(&db.structure, &q).expect("query evaluates");
    let total: i64 = res.rows.iter().map(|r| r.counts[0]).sum();
    println!(
        "   Local: {} Berlin customers, {} orders total, in {:?}",
        res.rows.len(),
        total,
        t0.elapsed()
    );
}
