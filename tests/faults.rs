//! Fault-injection harness: budget exhaustion, cooperative
//! cancellation, injected worker panics, and the degradation ladder,
//! exercised end to end through the public engine API. Every fault must
//! surface as a structured error — the process survives, the results
//! are deterministic, and the session metrics record what happened.

use std::sync::Arc;
use std::time::{Duration, Instant};

use foc_core::{
    Budget, CancelToken, DegradePolicy, EngineKind, Error, Evaluator, Phase, TripReason,
};
use foc_hardness::{string_encoding, string_formula};
use foc_logic::parse::parse_formula;
use foc_logic::Formula;
use foc_structures::gen::{gnm, grid, path};
use foc_structures::Structure;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A counting sentence that forces the decomposing engines through
/// materialisation, rewriting and ball enumeration.
fn counting_sentence() -> Arc<Formula> {
    parse_formula("exists x. (#(y). E(x,y) = #(z). (#(w). E(z,w) = 2))").unwrap()
}

/// A sentence whose width-7 counting term exceeds the decomposition
/// limits (`MAX_GK_WIDTH`/`MAX_FREE_PAIRS`), so the decomposing engines
/// report a degradable capability error.
fn wide_sentence() -> Arc<Formula> {
    parse_formula("#(a,b,c,d,e,f,g). (a=a & b=b & c=c & d=d & e=e & f=f & g=g) >= 1").unwrap()
}

fn engine(kind: EngineKind) -> Evaluator {
    Evaluator::builder().kind(kind).build().unwrap()
}

// ---------------------------------------------------------------------
// Budget exhaustion, layer by layer
// ---------------------------------------------------------------------

/// Runs `f` under a tiny fuel budget and returns the interrupt.
fn exhaust(kind: EngineKind, fuel: u64, g: &Structure, f: &Arc<Formula>) -> foc_core::Interrupt {
    let ev = Evaluator::builder().kind(kind).fuel(fuel).build().unwrap();
    let mut session = ev.session(g);
    let err = session.check_sentence(f).unwrap_err();
    let stats = session.stats();
    assert_eq!(stats.interrupted, 1, "metrics must record the interrupt");
    match err {
        Error::Interrupted(i) => {
            assert_eq!(i.reason, TripReason::Fuel);
            assert!(i.fuel_spent > fuel, "trip fires after the allowance");
            i
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}

#[test]
fn fuel_exhaustion_in_naive_evaluation() {
    let g = grid(6, 6);
    let i = exhaust(EngineKind::Naive, 3, &g, &counting_sentence());
    assert_eq!(i.phase, Phase::NaiveEval);
}

#[test]
fn fuel_exhaustion_in_decomposing_engines() {
    let g = grid(6, 6);
    let f = counting_sentence();
    for kind in [EngineKind::Local, EngineKind::Cover] {
        // A tiny allowance trips in the front of the pipeline…
        let i = exhaust(kind, 2, &g, &f);
        assert!(
            !matches!(i.phase, Phase::NaiveEval),
            "{kind:?} with 2 fuel tripped in {:?} — should not reach naive evaluation",
            i.phase
        );
        // …and a mid-sized one deeper down. Either way it is the guard
        // reporting, not a crash.
        let i = exhaust(kind, 200, &g, &f);
        assert!(i.fuel_spent > 200);
    }
}

#[test]
fn fuel_trips_are_deterministic() {
    let g = grid(5, 5);
    let f = counting_sentence();
    let first = exhaust(EngineKind::Local, 50, &g, &f);
    let second = exhaust(EngineKind::Local, 50, &g, &f);
    assert_eq!(first.phase, second.phase);
    assert_eq!(first.fuel_spent, second.fuel_spent);
}

#[test]
fn pre_cancelled_token_stops_immediately() {
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::default().with_cancel(token);
    let ev = Evaluator::builder()
        .kind(EngineKind::Local)
        .budget(budget)
        .build()
        .unwrap();
    let g = grid(4, 4);
    match ev.check_sentence(&g, &counting_sentence()) {
        Err(Error::Interrupted(i)) => {
            assert_eq!(i.reason, TripReason::Cancelled);
            assert_eq!(i.fuel_spent, 1, "the very first check observes it");
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}

#[test]
fn deadline_interrupts_hard_query_promptly() {
    // Theorem 4.3's string reduction produces genuinely hard FOC(P)
    // sentences: without a budget this naive evaluation runs far past
    // the 200ms deadline.
    let mut rng = StdRng::seed_from_u64(4242);
    let g = gnm(12, 30, &mut rng);
    let enc = string_encoding(&g);
    let phi = parse_formula("forall x. exists y. E(x,y)").unwrap();
    let hard = string_formula(&phi);
    let deadline = Duration::from_millis(200);
    let ev = Evaluator::builder()
        .kind(EngineKind::Naive)
        .timeout(deadline)
        .build()
        .unwrap();
    let t0 = Instant::now();
    let r = ev.check_sentence(&enc.string, &hard);
    let elapsed = t0.elapsed();
    match r {
        Err(Error::Interrupted(i)) => assert_eq!(i.reason, TripReason::Deadline),
        other => panic!("expected a deadline interrupt, got {other:?}"),
    }
    assert!(
        elapsed < deadline * 3,
        "interrupt must fire near the deadline, took {elapsed:?}"
    );
}

// ---------------------------------------------------------------------
// Panic isolation
// ---------------------------------------------------------------------

#[test]
fn injected_panic_surfaces_as_worker_panicked() {
    let f = counting_sentence();
    for kind in [EngineKind::Local, EngineKind::Cover] {
        // The cover engine renumbers cluster substructures, so the
        // injection (which targets original element ids) fires on its
        // top-level direct path — keep the structure small enough
        // (≤ direct_threshold) to stay on it. The local engine
        // enumerates original ids everywhere and takes a grid.
        let g = match kind {
            EngineKind::Cover => path(12),
            _ => grid(6, 6),
        };
        for threads in [1usize, 2, 8] {
            let ev = Evaluator::builder()
                .kind(kind)
                .threads(threads)
                .fault_panic_element(Some(0))
                .build()
                .unwrap();
            match ev.check_sentence(&g, &f) {
                Err(Error::WorkerPanicked { payload, .. }) => {
                    assert!(
                        payload.contains("injected fault"),
                        "{kind:?}/{threads}: payload {payload:?}"
                    );
                }
                other => panic!("{kind:?}/{threads}: expected WorkerPanicked, got {other:?}"),
            }
        }
    }
}

#[test]
fn panic_on_one_element_leaves_other_runs_unaffected() {
    // After a faulted run the same evaluator configuration (minus the
    // fault) still produces the reference answer: no poisoned global
    // state survives the catch.
    let g = grid(6, 6);
    let f = counting_sentence();
    let want = engine(EngineKind::Naive).check_sentence(&g, &f).unwrap();
    let faulty = Evaluator::builder()
        .kind(EngineKind::Local)
        .threads(4)
        .fault_panic_element(Some(3))
        .build()
        .unwrap();
    assert!(matches!(
        faulty.check_sentence(&g, &f),
        Err(Error::WorkerPanicked { .. })
    ));
    let clean = Evaluator::builder()
        .kind(EngineKind::Local)
        .threads(4)
        .build()
        .unwrap();
    assert_eq!(clean.check_sentence(&g, &f).unwrap(), want);
}

#[test]
fn worker_panics_are_not_degradable() {
    // The degradation ladder must not swallow a panic: FallThrough
    // degrades capability errors only.
    let g = grid(5, 5);
    let ev = Evaluator::builder()
        .kind(EngineKind::Local)
        .degrade(DegradePolicy::FallThrough)
        .fault_panic_element(Some(0))
        .build()
        .unwrap();
    assert!(matches!(
        ev.check_sentence(&g, &counting_sentence()),
        Err(Error::WorkerPanicked { .. })
    ));
}

// ---------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------

#[test]
fn fall_through_degrades_wide_count_to_naive() {
    let g = path(3);
    let f = wide_sentence();
    let want = engine(EngineKind::Naive).check_sentence(&g, &f).unwrap();
    assert!(want, "3^7 tuples certainly exceed 1");
    for kind in [EngineKind::Local, EngineKind::Cover] {
        let ev = Evaluator::builder()
            .kind(kind)
            .degrade(DegradePolicy::FallThrough)
            .build()
            .unwrap();
        let mut session = ev.session(&g);
        assert_eq!(session.check_sentence(&f).unwrap(), want, "{kind:?}");
        let stats = session.stats();
        assert_eq!(stats.degrade_naive, 1, "{kind:?}: exactly one ladder step");
        assert_eq!(stats.degrade_local, 0, "{kind:?}: no cover→local step");
        assert_eq!(stats.naive_fallbacks, 1, "{kind:?}");
        assert_eq!(stats.interrupted, 0, "{kind:?}");
    }
}

#[test]
fn strict_policy_surfaces_capability_errors() {
    let g = path(3);
    let ev = Evaluator::builder()
        .kind(EngineKind::Local)
        .degrade(DegradePolicy::Strict)
        .build()
        .unwrap();
    let mut session = ev.session(&g);
    let err = session.check_sentence(&wide_sentence()).unwrap_err();
    assert!(err.is_degradable(), "a capability error: {err}");
    assert!(matches!(err, Error::Locality(_)));
    let stats = session.stats();
    assert_eq!(stats.degrade_naive, 0);
    assert_eq!(stats.degrade_local, 0);
}

#[test]
fn degraded_answer_matches_naive_on_counts() {
    let g = path(3);
    let f = parse_formula("#(a,b,c,d,e,f,g). (a=b | c=d | e=f | f=g) >= 1").unwrap();
    let want = engine(EngineKind::Naive).check_sentence(&g, &f).unwrap();
    let ev = Evaluator::builder()
        .kind(EngineKind::Cover)
        .degrade(DegradePolicy::FallThrough)
        .build()
        .unwrap();
    assert_eq!(ev.check_sentence(&g, &f).unwrap(), want);
}

// ---------------------------------------------------------------------
// Overflow containment
// ---------------------------------------------------------------------

#[test]
fn arithmetic_overflow_is_structured_in_every_engine() {
    // i64::MAX * |A| overflows as soon as |A| ≥ 2; all engines must
    // report the same structured EvalError instead of wrapping or
    // panicking.
    let g = path(4);
    let f = parse_formula("9223372036854775807 * #(x). x = x >= 1").unwrap();
    for kind in [EngineKind::Naive, EngineKind::Local, EngineKind::Cover] {
        let err = engine(kind).check_sentence(&g, &f).unwrap_err();
        match err {
            Error::Eval(e) => {
                assert_eq!(e, foc_eval::EvalError::Overflow, "{kind:?}")
            }
            other => panic!("{kind:?}: expected Eval(Overflow), got {other:?}"),
        }
    }
}

#[test]
fn overflow_is_not_degradable() {
    // A semantic error must not trigger the ladder: degrading would
    // re-run the same arithmetic and hide the root cause.
    let g = path(4);
    let f = parse_formula("9223372036854775807 * #(x). x = x >= 1").unwrap();
    let ev = Evaluator::builder()
        .kind(EngineKind::Cover)
        .degrade(DegradePolicy::FallThrough)
        .build()
        .unwrap();
    let err = ev.check_sentence(&g, &f).unwrap_err();
    assert!(!err.is_degradable());
    assert!(matches!(err, Error::Eval(foc_eval::EvalError::Overflow)));
}
