//! End-to-end integration tests spanning every crate: parse → validate →
//! decompose → evaluate across engines, on every generator, plus the
//! hardness constructions feeding back into the evaluators.

use foc_core::{EngineKind, Evaluator};
use foc_eval::NaiveEvaluator;
use foc_hardness::{tree_encoding, tree_formula};
use foc_logic::parse::{parse_formula, parse_term};
use foc_logic::Predicates;
use foc_structures::gen::{
    balanced_tree, bounded_degree, caterpillar, cycle, gnm, grid, path, random_tree, star,
    thinned_grid, unranked_tree,
};
use foc_structures::Structure;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn zoo() -> Vec<Structure> {
    let mut rng = StdRng::seed_from_u64(515);
    vec![
        path(13),
        cycle(10),
        star(9),
        grid(4, 4),
        balanced_tree(2, 3),
        caterpillar(4, 2),
        random_tree(15, &mut rng),
        unranked_tree(15, 0.8, &mut rng),
        bounded_degree(16, 3, 48, &mut rng),
        gnm(14, 18, &mut rng),
        thinned_grid(4, 4, 0.25, &mut rng),
    ]
}

#[test]
fn parsed_sentences_agree_across_engines_and_zoo() {
    let sentences = [
        "exists x. #(y). E(x,y) >= 3",
        "@even(#(x,y). E(x,y))",
        "exists x. (#(y). (E(x,y) & #(z). E(y,z) = 1) = #(w). E(x,w))",
        "forall x. (#(y). E(x,y) >= 1 | #(y). (!(x = y)) >= 1)",
        "@prime(#(x). (x = x) + #(x,y). E(x,y))",
    ];
    let engines = [
        Evaluator::builder()
            .kind(EngineKind::Naive)
            .build()
            .unwrap(),
        Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap(),
        Evaluator::builder()
            .kind(EngineKind::Cover)
            .build()
            .unwrap(),
    ];
    for src in sentences {
        let f = parse_formula(src).unwrap();
        for s in zoo() {
            let want = engines[0].check_sentence(&s, &f).unwrap();
            for ev in &engines[1..] {
                assert_eq!(
                    ev.check_sentence(&s, &f).unwrap(),
                    want,
                    "{:?} disagrees on {src} (order {})",
                    ev.kind(),
                    s.order()
                );
            }
        }
    }
}

#[test]
fn parsed_ground_terms_agree_across_engines_and_zoo() {
    let terms = [
        "#(x). #(y). E(x,y) = 2",
        "#(x,y). (dist(x,y) <= 3 & !(x = y))",
        "3 * #(x,y). E(x,y) - #(x). (x = x)",
        "#(x,y). (!(E(x,y)) & !(x = y))",
    ];
    let engines = [
        Evaluator::builder()
            .kind(EngineKind::Naive)
            .build()
            .unwrap(),
        Evaluator::builder()
            .kind(EngineKind::Local)
            .build()
            .unwrap(),
        Evaluator::builder()
            .kind(EngineKind::Cover)
            .build()
            .unwrap(),
    ];
    for src in terms {
        let t = parse_term(src).unwrap();
        for s in zoo() {
            let want = engines[0].eval_ground(&s, &t).unwrap();
            for ev in &engines[1..] {
                assert_eq!(
                    ev.eval_ground(&s, &t).unwrap(),
                    want,
                    "{:?} disagrees on {src} (order {})",
                    ev.kind(),
                    s.order()
                );
            }
        }
    }
}

#[test]
fn hardness_output_feeds_the_foc1_engines() {
    // The *rewritten* φ̂ of Theorem 4.1 is FOC(P) but NOT FOC1(P) (its
    // ψ_E guard has two free variables); the decomposing engines must
    // reject it while the reference evaluator handles it.
    let g = gnm(5, 6, &mut StdRng::seed_from_u64(9));
    let phi = parse_formula("exists x y. (E(x,y) & !(x = y))").unwrap();
    let enc = tree_encoding(&g);
    let phi_hat = tree_formula(&phi);
    assert!(!foc_logic::fragment::is_foc1(&phi_hat));
    let local = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap();
    assert!(matches!(
        local.check_sentence(&enc.tree, &phi_hat),
        Err(foc_core::Error::NotFoc1(_))
    ));
    // The naive engine is complete for FOC(P) and decides it — agreeing
    // with the original graph.
    let preds = Predicates::standard();
    let naive = Evaluator::builder()
        .kind(EngineKind::Naive)
        .build()
        .unwrap();
    let want = NaiveEvaluator::new(&g, &preds)
        .check_sentence(&phi)
        .unwrap();
    let got = naive.check_sentence(&enc.tree, &phi_hat).unwrap();
    assert_eq!(want, got);
    // But FOC1 sentences still run on T_G with the fast engines: degree
    // statistics of the tree itself.
    let deg = parse_formula("exists x. #(y). E(x,y) >= 4").unwrap();
    let want = Evaluator::builder()
        .kind(EngineKind::Naive)
        .build()
        .unwrap()
        .check_sentence(&enc.tree, &deg)
        .unwrap();
    assert_eq!(local.check_sentence(&enc.tree, &deg).unwrap(), want);
}

#[test]
fn counting_matches_enumeration() {
    // |φ(A)| computed by the engines equals the length of the enumerated
    // result (Definition 5.2 ↔ Corollary 5.6 consistency).
    let preds = Predicates::standard();
    let f = parse_formula("E(x,y) & #(z). E(y,z) >= 2").unwrap();
    let vars = [foc_logic::Var::new("x"), foc_logic::Var::new("y")];
    for s in zoo() {
        let mut ev = NaiveEvaluator::new(&s, &preds);
        let enumerated = ev.satisfying_tuples(&f, &vars).unwrap().len() as i64;
        for kind in [EngineKind::Naive, EngineKind::Local] {
            let engine = Evaluator::builder().kind(kind).build().unwrap();
            assert_eq!(
                engine.count(&s, &f, &vars).unwrap(),
                enumerated,
                "{kind:?} on order {}",
                s.order()
            );
        }
    }
}

#[test]
fn session_plans_match_depth() {
    // The number of materialised markers equals the number of predicate
    // applications (Theorem 6.10's τ-symbols), level by level.
    let f =
        parse_formula("exists x. (#(y). (E(x,y) & #(z). E(y,z) = 2) >= 1 & !(#(y). E(x,y) = 5))")
            .unwrap();
    let ev = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap();
    let s = grid(6, 6);
    let mut session = ev.session(&s);
    session.check_sentence(&f).unwrap();
    // Three predicate applications: the inner `= 2`, the outer `>= 1`,
    // and the `= 5`.
    assert_eq!(session.stats().markers_created, 3);
    assert_eq!(session.plan.len(), 3);
    assert!(session.plan.iter().all(|m| m.arity == 1));
}
