//! Property-based tests over random structures and random formulas of
//! the separable fragment: the rewriting pipeline must agree with the
//! reference semantics *everywhere*, and the structural invariants of
//! covers and the splitter game must hold on arbitrary graphs.

use std::sync::Arc;

use foc_core::{EngineKind, Evaluator, SumAggregate, Weights};
use foc_covers::cover::build_cover;
use foc_covers::removal::{remove_element, remove_formula, RemovalContext};
use foc_eval::{Assignment, NaiveEvaluator};
use foc_locality::decompose::decompose_ground;
use foc_locality::gnf::gaifman_nf;
use foc_logic::build::*;
use foc_logic::parse::parse_formula;
use foc_logic::{Formula, Predicates, Term, Var};
use foc_structures::gen::graph_structure;
use foc_structures::Structure;
use proptest::prelude::*;

/// A random small graph structure: `n ∈ [2, 9]`, random edge list.
fn arb_structure() -> impl Strategy<Value = Structure> {
    (
        2u32..9,
        proptest::collection::vec((0u32..9, 0u32..9), 0..14),
    )
        .prop_map(|(n, edges)| {
            let edges: Vec<(u32, u32)> = edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
            graph_structure(n, &edges)
        })
}

/// Variable pool used by the formula generator.
fn pool() -> Vec<Var> {
    vec![v("p0"), v("p1"), v("p2")]
}

/// A random quantifier-free-plus-guarded formula of the separable
/// fragment over the `{E/2}` signature with free variables from `pool`.
fn arb_fragment_formula() -> impl Strategy<Value = Arc<Formula>> {
    let vars = pool();
    let leaf = {
        let vars = vars.clone();
        prop_oneof![
            (0usize..3, 0usize..3).prop_map({
                let vars = vars.clone();
                move |(i, j)| atom_vec("E", vec![vars[i], vars[j]])
            }),
            (0usize..3, 0usize..3).prop_map({
                let vars = vars.clone();
                move |(i, j)| eq(vars[i], vars[j])
            }),
            (0usize..3, 0usize..3, 1u32..4).prop_map({
                let vars = vars.clone();
                move |(i, j, d)| dist_le(vars[i], vars[j], d)
            }),
        ]
    };
    leaf.prop_recursive(3, 24, 3, move |inner| {
        let vars2 = pool();
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| or(a, b)),
            inner.clone().prop_map(not),
            // Guarded existential: ∃z (E(anchor, z) ∧ ψ[p_i := z]).
            (inner, 0usize..3, 0usize..3).prop_map(move |(body, anchor, replaced)| {
                let z = Var::fresh("q");
                let mut map = std::collections::HashMap::new();
                map.insert(vars2[replaced], z);
                let renamed = foc_logic::subst::rename_free(&body, &map);
                exists(z, and(atom_vec("E", vec![vars2[anchor], z]), renamed))
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Gaifman normal form preserves semantics on arbitrary structures
    /// and assignments (Theorem 6.7 for the fragment).
    #[test]
    fn gnf_preserves_semantics(s in arb_structure(), f in arb_fragment_formula(), seed in 0u32..100) {
        let g = match gaifman_nf(&f) {
            Ok(g) => g,
            Err(_) => return Ok(()), // outside the supported fragment: fine
        };
        let preds = Predicates::standard();
        let mut ev = NaiveEvaluator::new(&s, &preds);
        let n = s.order();
        let free: Vec<Var> = f.free_vars().into_iter().collect();
        let assignment: Vec<(Var, u32)> = free
            .iter()
            .enumerate()
            .map(|(i, &var)| (var, (seed + i as u32 * 7) % n))
            .collect();
        let mut env = Assignment::from_pairs(assignment);
        let want = ev.check(&f, &mut env).unwrap();
        let got = ev.check(&g, &mut env).unwrap();
        prop_assert_eq!(want, got, "GNF broke {} on order {}", f, n);
    }

    /// The Lemma 6.4 decomposition computes the same count as the direct
    /// semantics, for width-2 counting over random fragment bodies.
    #[test]
    fn decomposition_counts_correctly(s in arb_structure(), f in arb_fragment_formula()) {
        let vars = pool();
        let counted = &vars[..2];
        let cl = match decompose_ground(&f, counted) {
            Ok(cl) => cl,
            Err(_) => return Ok(()),
        };
        let preds = Predicates::standard();
        let term = Arc::new(Term::Count(counted.to_vec().into_boxed_slice(), f.clone()));
        // Only ground counting here: drop cases with a third free var.
        if term.free_vars().is_empty() {
            let mut ev = NaiveEvaluator::new(&s, &preds);
            let want = ev.eval_ground(&term).unwrap();
            let got = cl.eval_naive(&s, &preds, None).unwrap();
            prop_assert_eq!(want, got, "decomposition broke #{:?}.{}", counted, f);
        }
    }

    /// Local and Cover engines agree with the reference on random FOC1
    /// sentences built from random bodies.
    #[test]
    fn engines_agree_on_random_sentences(s in arb_structure(), f in arb_fragment_formula(), c in 0i64..4) {
        let vars = pool();
        // Sentence: #(p0,p1).ψ' ≥ c where ψ' closes the third variable
        // with a guarded quantifier if needed.
        let mut body = f;
        if body.free_vars().contains(&vars[2]) {
            body = exists(vars[2], and(atom_vec("E", vec![vars[0], vars[2]]), body));
        }
        let term = cnt_vec(vec![vars[0], vars[1]], body);
        let sentence = tle(int(c), term);
        prop_assume!(sentence.is_sentence());
        let naive = Evaluator::builder().kind(EngineKind::Naive).build().unwrap();
        let want = naive.check_sentence(&s, &sentence).unwrap();
        for kind in [EngineKind::Local, EngineKind::Cover] {
            let ev = Evaluator::builder().kind(kind).build().unwrap();
            let got = ev.check_sentence(&s, &sentence).unwrap();
            prop_assert_eq!(got, want, "{:?} broke {} on order {}", kind, sentence, s.order());
        }
    }

    /// Covers are valid on arbitrary graphs: N_r(a) ⊆ X(a), radius ≤ 2r.
    #[test]
    fn covers_are_always_valid(s in arb_structure(), r in 1u32..4) {
        let g = s.gaifman();
        let cov = build_cover(g, r);
        prop_assert!(cov.verify(g));
        prop_assert!(cov.max_radius(g) <= 2 * r);
        // Assignment is total.
        prop_assert_eq!(cov.assign.len(), g.n() as usize);
    }

    /// The Removal Lemma rewriting agrees with direct evaluation for
    /// random fragment formulas, elements, and assignments.
    #[test]
    fn removal_rewriting_agrees(
        s in arb_structure(),
        f in arb_fragment_formula(),
        d_seed in 0u32..100,
        a_seed in 0u32..100,
    ) {
        prop_assume!(s.order() >= 2);
        let n = s.order();
        let d = d_seed % n;
        let ctx = RemovalContext::new(4);
        let rem = remove_element(&s, d, &ctx);
        let preds = Predicates::standard();
        let free: Vec<Var> = f.free_vars().into_iter().collect();
        let assignment: Vec<(Var, u32)> = free
            .iter()
            .enumerate()
            .map(|(i, &var)| (var, (a_seed + 13 * i as u32) % n))
            .collect();
        let vset: std::collections::BTreeSet<Var> =
            assignment.iter().filter(|(_, e)| *e == d).map(|(v, _)| *v).collect();
        let mut ev = NaiveEvaluator::new(&s, &preds);
        let mut env = Assignment::from_pairs(assignment.clone());
        let want = ev.check(&f, &mut env).unwrap();
        let rewritten = remove_formula(&f, &vset, &ctx);
        let mut ev2 = NaiveEvaluator::new(&rem.structure, &preds);
        let mut env2 = Assignment::from_pairs(
            assignment.iter().filter(|(_, e)| *e != d).map(|(v, e)| (*v, rem.new_of_old[e])),
        );
        let got = ev2.check(&rewritten, &mut env2).unwrap();
        prop_assert_eq!(want, got, "removal broke {} at d={}", f, d);
    }

    /// SUM aggregates (Section 9 prototype) agree between the naive and
    /// decomposed paths for random fragment bodies and random weights.
    #[test]
    fn sum_aggregate_agrees(s in arb_structure(), f in arb_fragment_formula(), wseed in 0u64..1000) {
        let vars = pool();
        let mut body = f;
        if body.free_vars().contains(&vars[2]) {
            body = exists(vars[2], and(atom_vec("E", vec![vars[0], vars[2]]), body));
        }
        let agg = match SumAggregate::new(vec![vars[0], vars[1]], vars[1], body) {
            Ok(a) => a,
            Err(_) => return Ok(()),
        };
        let weights = Weights::new(
            (0..s.order()).map(|e| ((e as u64 * 2654435761 + wseed) % 41) as i64 - 20).collect(),
        );
        let naive = Evaluator::builder().kind(EngineKind::Naive).build().unwrap().eval_sum(&s, &weights, &agg).unwrap();
        let local = Evaluator::builder().kind(EngineKind::Local).build().unwrap().eval_sum(&s, &weights, &agg).unwrap();
        prop_assert_eq!(naive, local, "SUM broke on order {}", s.order());
    }

    /// Constant-delay enumeration agrees with materialised query
    /// evaluation for random degree-threshold queries.
    #[test]
    fn enumeration_agrees_with_query(s in arb_structure(), c in 0i64..4) {
        let x = v("p0");
        let y = v("p1");
        let q = foc_logic::Query::new(
            vec![x],
            vec![cnt_vec(vec![y], atom_vec("E", vec![x, y]))],
            tle(int(c), cnt_vec(vec![y], atom_vec("E", vec![x, y]))),
        )
        .unwrap();
        let ev = Evaluator::builder().kind(EngineKind::Local).build().unwrap();
        let reference = ev.query(&s, &q).unwrap();
        let streamed: Vec<_> = ev.enumerate_query(&s, &q).unwrap().collect();
        prop_assert_eq!(streamed, reference.rows);
    }

    /// Printing and re-parsing is the identity on random formulas.
    #[test]
    fn print_parse_roundtrip(f in arb_fragment_formula()) {
        let printed = f.to_string();
        let reparsed = parse_formula(&printed).unwrap();
        prop_assert_eq!(&reparsed, &f, "round-trip broke {}", printed);
    }
}
