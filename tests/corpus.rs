//! Regression replay of the committed divergence corpus.
//!
//! Every file under `tests/corpus/` is a shrunk, once-diverging case
//! (caught by `foc fuzz` against a deliberately injected engine bug and
//! minimised by the shrinker). With healthy engines the whole corpus
//! must replay clean: any divergence here means a previously-fixed
//! cross-engine disagreement has come back.

use std::path::Path;

use foc_diff::harness::{replay, FuzzConfig};
use foc_diff::{case_from_str, case_to_string, load_dir};
use foc_obs::Metrics;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_has_the_seeded_cases_and_they_round_trip() {
    let entries = load_dir(&corpus_dir()).expect("corpus must load");
    assert!(
        entries.len() >= 10,
        "expected the 10 seeded cases, found {}",
        entries.len()
    );
    for (path, case) in &entries {
        // Re-serialising must reproduce the query and structure exactly
        // (notes aside): the corpus format is the replay contract.
        let text = std::fs::read_to_string(path).unwrap();
        let reparsed = case_from_str(&case_to_string(case, "")).unwrap();
        assert_eq!(reparsed.query.text(), case.query.text(), "{path:?}");
        assert_eq!(
            reparsed.structure.fingerprint(),
            case.structure.fingerprint(),
            "{path:?}"
        );
        assert!(text.starts_with("# foc-diff corpus case"), "{path:?}");
    }
    // Several generator families must be represented, so replay
    // exercises more than one signature.
    let sigs: std::collections::BTreeSet<String> = entries
        .iter()
        .map(|(_, c)| {
            c.structure
                .signature()
                .rels()
                .iter()
                .map(|r| format!("{}/{}", r.name, r.arity))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    assert!(
        sigs.len() >= 3,
        "corpus lacks signature diversity: {sigs:?}"
    );
}

#[test]
fn corpus_replays_clean_on_healthy_engines() {
    let cfg = FuzzConfig {
        corpus_dir: Some(corpus_dir()),
        ..FuzzConfig::default()
    };
    let metrics = Metrics::new();
    let mut log = Vec::new();
    let report = replay(&cfg, &metrics, &mut log);
    assert!(report.cases >= 10);
    assert!(
        report.clean(),
        "corpus divergence (a fixed bug regressed):\n{}",
        String::from_utf8_lossy(&log)
    );
}
