//! Anytime evaluation end to end: a budget that previously meant
//! `Interrupted` now yields a tagged best-so-far answer, interrupts
//! stay deterministic across thread counts, and identical seeded
//! anytime runs agree on their confidence tag.

use std::sync::Arc;
use std::time::Duration;

use foc_core::{AnytimeConfig, Confidence, EngineKind, Error, Evaluator, Phase, TripReason};
use foc_logic::build::{cnt, dist_le, not, v};
use foc_logic::Term;
use foc_structures::gen::grid;
use foc_structures::Structure;

/// The locality-heavy counting query the anytime suite leans on: big
/// enough per-element work that budgets trip mid-flight, local enough
/// that every engine supports it.
fn far_pairs() -> Arc<Term> {
    let x = v("ax");
    let y = v("ay");
    cnt([x, y], not(dist_le(x, y, 2)))
}

fn engine(kind: EngineKind, threads: usize, fuel: u64) -> Evaluator {
    Evaluator::builder()
        .kind(kind)
        .threads(threads)
        .fuel(fuel)
        .build()
        .unwrap()
}

/// The acceptance criterion of the anytime layer: arm a wall-clock
/// deadline small enough to trip inside the cover recursion. The plain
/// engine can only report `Interrupted`; the same deadline under the
/// deepening driver returns a best-so-far answer with a sound tag.
#[test]
fn deadline_tripping_mid_cover_recursion_yields_a_tagged_answer() {
    // Big enough that the plain cover run (seconds of work) always
    // trips at 50ms, small enough that the sample pass banks inside
    // its slice even in a debug build on a loaded machine.
    let a = grid(32, 32);
    let q = far_pairs();
    let deadline = Duration::from_millis(50);

    // Plain run: the deadline cuts the cover machinery short and the
    // caller gets nothing but the interrupt.
    let plain = Evaluator::builder()
        .kind(EngineKind::Cover)
        .timeout(deadline)
        .build()
        .unwrap();
    match plain.eval_ground(&a, &q) {
        Err(Error::Interrupted(i)) => {
            assert_eq!(i.reason, TripReason::Deadline);
            assert!(
                !matches!(i.phase, Phase::NaiveEval),
                "the cover engine tripped in {:?} — expected its own machinery",
                i.phase
            );
        }
        other => panic!("expected the deadline to trip the plain run, got {other:?}"),
    }

    // Anytime run under the *same* deadline: the sample pass banks a
    // verified lower bound long before the budget dies, so the driver
    // returns it tagged instead of erroring.
    let anytime = Evaluator::builder()
        .kind(EngineKind::Cover)
        .timeout(deadline)
        .build()
        .unwrap();
    let out = anytime
        .eval_ground_anytime(&a, &q, &AnytimeConfig::default(), None, None)
        .expect("a 50ms deadline leaves the sample pass room to bank an answer");
    // What exactly got banked depends on machine speed (this is a
    // wall-clock test), so assert each tag's *contract* against an
    // unbounded reference run rather than pinning the rung reached: a
    // sub-exact tag must carry the trip that stopped deepening and a
    // lower bound must actually bound, while an exact tag (a fast
    // machine finished the local pass inside the deadline) must be
    // the true value.
    let exact = Evaluator::builder()
        .kind(EngineKind::Local)
        .build()
        .unwrap()
        .eval_ground(&a, &q)
        .unwrap();
    match out.confidence {
        Confidence::LowerBound => {
            assert!(
                out.value <= exact,
                "lower bound {} exceeds exact {exact}",
                out.value
            );
            assert!(
                out.interrupt.is_some(),
                "a degraded answer must carry the trip that stopped deepening"
            );
        }
        Confidence::Partial {
            clusters_done,
            clusters_total,
        } => {
            assert!(clusters_done < clusters_total);
            assert!(
                out.interrupt.is_some(),
                "a degraded answer must carry the trip that stopped deepening"
            );
        }
        Confidence::Approximate { error_bound } => {
            assert!(
                out.value.abs_diff(exact) <= error_bound,
                "approx estimate {} strays past ±{error_bound} of exact {exact}",
                out.value
            );
            assert!(
                out.interrupt.is_some(),
                "a degraded answer must carry the trip that stopped deepening"
            );
        }
        Confidence::Exact => assert_eq!(out.value, exact, "an exact tag must be the true value"),
    }
}

/// Satellite: a fuel-tripped run reports the same `Interrupt` — reason
/// and phase — no matter how many worker threads evaluated it. Fuel is
/// a deterministic allowance, so the trip site cannot depend on
/// scheduling.
#[test]
fn fuel_trips_agree_across_thread_counts() {
    let a = grid(10, 10);
    let q = far_pairs();
    for kind in [EngineKind::Naive, EngineKind::Local, EngineKind::Cover] {
        let trips: Vec<(TripReason, Phase)> = [1usize, 4]
            .iter()
            .map(
                |&threads| match engine(kind, threads, 400).eval_ground(&a, &q) {
                    Err(Error::Interrupted(i)) => (i.reason, i.phase),
                    other => panic!("{kind:?} t{threads}: expected a fuel trip, got {other:?}"),
                },
            )
            .collect();
        assert_eq!(
            trips[0], trips[1],
            "{kind:?}: interrupt differs between 1 and 4 threads"
        );
    }
}

/// Satellite: with anytime on, two identical runs of the same seeded
/// case report the same confidence tag and the same value — and thread
/// count does not change the tag either.
#[test]
fn anytime_confidence_is_deterministic_across_runs_and_threads() {
    let a: Structure = grid(12, 12);
    let q = far_pairs();
    let cfg = AnytimeConfig::default();

    let run = |threads: usize| {
        engine(EngineKind::Cover, threads, 2_000)
            .eval_ground_anytime(&a, &q, &cfg, None, None)
            .expect("a 2000-fuel budget banks the sample pass")
    };
    let first = run(1);
    let second = run(1);
    assert_eq!(first.confidence, second.confidence, "tag must be stable");
    assert_eq!(first.value, second.value, "value must be stable");
    assert_eq!(
        first.fuel_spent(),
        second.fuel_spent(),
        "fuel accounting must be stable"
    );

    let wide = run(4);
    assert_eq!(
        first.confidence, wide.confidence,
        "thread count changed the confidence tag"
    );
    assert_eq!(first.value, wide.value, "thread count changed the value");
}
